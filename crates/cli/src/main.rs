//! `shoal` — semantics-driven static analysis for Unix shell programs.
//!
//! Subcommands:
//!
//! * `analyze SCRIPT…` — run the full symbolic analysis (the paper's
//!   headline: catches Fig. 1, proves Fig. 2, catches Fig. 3).
//! * `lint SCRIPT…` — the ShellCheck-style syntactic baseline, for
//!   comparison.
//! * `typecheck 'PIPELINE'` — stream-type a pipeline and print each
//!   stage's line types.
//! * `mine COMMAND…` — run the Fig. 4 spec-mining pipeline and print
//!   the mined specification.
//! * `verify --no-RW PREFIX SCRIPT` — the §5 security checker.
//! * `monitor --type T [--halt]` — the runtime stream monitor
//!   (stdin → stdout).
//! * `explain SCRIPT [INDEX]` — replay the witness execution path of a
//!   finding (its provenance trail) step by step.
//! * `explain COMMAND` — print the ground-truth specification.

use std::io::{BufReader, Read, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    // Arm test-only fault injection when SHOAL_FAILPOINTS is set
    // (no-op — one relaxed atomic load per site — otherwise).
    shoal_obs::failpoint::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let (obs, rest) = match ObsFlags::extract(rest) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("shoal: {e}");
            return ExitCode::from(2);
        }
    };
    let rest = &rest[..];
    let code = match cmd.as_str() {
        "analyze" | "check" => cmd_analyze(rest, &obs),
        "scan" => cmd_scan(rest),
        "audit" => cmd_audit(rest),
        "daemon" => cmd_daemon(rest),
        "lsp" => cmd_lsp(rest),
        "bench-service" => cmd_bench_service(rest),
        "jit" => cmd_jit(rest, &obs),
        "lint" => cmd_lint(rest),
        "typecheck" => cmd_typecheck(rest),
        "mine" => cmd_mine(rest),
        "verify" => cmd_verify(rest),
        "monitor" => cmd_monitor(rest),
        "explain" => cmd_explain(rest),
        "coach" => cmd_coach(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("shoal: unknown subcommand {other:?}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    };
    if let Err(e) = obs.finish() {
        eprintln!("shoal: {e}");
        return ExitCode::from(2);
    }
    code
}

/// Cross-cutting observability flags, accepted by every subcommand:
/// `--stats` prints a metrics table on exit, `--trace FILE` writes the
/// recorded event stream as JSONL, `--profile` attaches per-phase
/// timings to analysis reports. Any of them turns the recorder on;
/// without them the instrumentation stays disabled (one atomic load).
struct ObsFlags {
    stats: bool,
    trace: Option<String>,
    profile: bool,
}

impl ObsFlags {
    fn extract(args: &[String]) -> Result<(ObsFlags, Vec<String>), String> {
        let mut flags = ObsFlags {
            stats: false,
            trace: None,
            profile: false,
        };
        let mut rest = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--stats" => flags.stats = true,
                "--profile" => flags.profile = true,
                "--trace" => {
                    i += 1;
                    let Some(path) = args.get(i) else {
                        return Err("--trace needs an output file (.jsonl)".into());
                    };
                    flags.trace = Some(path.clone());
                }
                _ => rest.push(args[i].clone()),
            }
            i += 1;
        }
        if flags.stats || flags.trace.is_some() || flags.profile {
            shoal_obs::install();
        }
        Ok((flags, rest))
    }

    fn finish(&self) -> Result<(), String> {
        if let Some(path) = &self.trace {
            let events = shoal_obs::take_events();
            let jsonl = shoal_obs::trace_to_jsonl(&events);
            std::fs::write(path, jsonl).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("shoal: wrote {} trace event(s) to {path}", events.len());
        }
        if self.stats {
            let snap = shoal_obs::snapshot();
            eprint!("{}", shoal_obs::stats::render_snapshot(&snap));
        }
        Ok(())
    }
}

const USAGE: &str = "\
shoal — semantics-driven static analysis for Unix shell programs

USAGE:
    shoal analyze SCRIPT...            symbolic analysis (all checkers)
    shoal check SCRIPT...              alias for analyze
    shoal scan PATH...                 hardened batch analysis of a tree
    shoal audit PATH...                fleet coverage / precision-loss report
    shoal jit SCRIPT...                just-in-time analysis via the daemon
    shoal daemon [stop|status|top]     run / control the resident analyzer
    shoal lsp                          language server over stdio (editor
                                       integration; incremental engine)
    shoal bench-service                closed-loop load test of the daemon
    shoal lint SCRIPT...               syntactic baseline linter
    shoal typecheck 'CMD | CMD | ...'  stream-type a pipeline
    shoal mine COMMAND...              mine specs from docs + probing
    shoal verify --no-RW PREFIX SCRIPT check a script against a policy
    shoal monitor --type T [--halt]    monitor stdin line types
    shoal explain SCRIPT [INDEX]       replay the witness path of finding #INDEX
    shoal explain COMMAND              print a command's specification
    shoal coach SCRIPT...              optimization suggestions (§5)

ANALYZE/CHECK OPTIONS:
    --format text|json|sarif    output format (json embeds provenance;
                                sarif is SARIF 2.1.0 with codeFlows)
    --emit-world-tree FILE      write the explored world tree (.dot ->
                                GraphViz, .json -> JSON, else both)
    --incremental               statement-level incremental engine
                                (byte-identical output; same daemon
                                cache key as a plain analyze)

SCAN OPTIONS:
    --format text|json          output format (default text)
    --fuel N                    symbolic-step budget per script
                                (default 200000; 0 = unlimited)
    --deadline-ms N             wall-clock budget per script in ms
                                (default 2000; 0 = unlimited)
    --jobs N                    worker threads for the batch
                                (default 0 = available parallelism)
    --daemon                    route per-script analysis through the
                                JIT daemon (falls back in-process)
    --audit                     record coverage/precision-loss maps and
                                append the fleet shoal-audit/v1 report
                                (in-process only; rejects --daemon)
  scan walks directories for .sh / shell-shebang files, isolates each
  script's analysis against panics (retrying once with tightened
  budgets), and exits 0 = clean, 1 = findings, 3 = some scripts only
  partially analyzed (parse recovery or budget), 4 = a script panicked.
  Output is byte-identical for any --jobs value.

AUDIT OPTIONS (plus --fuel/--deadline-ms/--jobs as for scan):
    --format text|json          output format (default text; json is
                                the shoal-audit/v1 document)
  audit scans like `scan --audit` but prints only the fleet report:
  commands ranked by scripts x call sites lacking specs, precision
  losses by cause (no-spec, dfa-cap, loop-widen, fuel, deadline,
  parse-partial, world-cap, expansion-cap) with worst-offender
  scripts, and checker fired / possibly-suppressed counts. Output is
  byte-deterministic across runs and --jobs values; exits 0.

JIT / DAEMON OPTIONS:
    --socket PATH               daemon socket (default: per-user path
                                under $XDG_RUNTIME_DIR; override with
                                $SHOAL_DAEMON_SOCKET)
    --no-spawn                  jit: never auto-spawn a daemon
    --format text|json          jit: output format (default text)
    --cache-dir DIR             daemon: on-disk result cache (default:
                                ~/.cache/shoal-jit; $SHOAL_CACHE_DIR)
    --cache-capacity N          daemon: in-memory LRU entries (512)
    --cache-disk-bytes N        daemon: disk-cache size cap in bytes
                                (GC evicts oldest-mtime entries;
                                default unbounded)
    --jobs N                    daemon: concurrent analyses admitted
                                (0 = auto); excess requests queue
    --queue-depth N             daemon: requests allowed to queue for
                                an analysis slot (default 256; past
                                it, requests are shed `queue-full`)
    --queue-wait-ms N           daemon: max queue wait before a
                                request is shed `queue-timeout`
                                (default 2000; a request's own
                                --deadline-ms caps it lower)
    --request-timeout-ms N      jit: per-attempt response timeout
                                (default 30000)
    --retries N                 jit: transient-failure retries with
                                jittered exponential backoff
                                (default 2; sheds never retry)
    --trace-log FILE            daemon: append one JSONL trace line
                                per request (+ a final daemon_stats
                                summary on shutdown)
  `shoal daemon` runs the resident analyzer in the foreground;
  `shoal daemon status` / `shoal daemon stop` control a running one.
  `shoal daemon status --format json` prints the full shoal-stats/v1
  telemetry snapshot (per-endpoint request counts, latency
  percentiles, cache outcome taxonomy, slow-request log);
  `shoal daemon top` renders the same snapshot as a human page.
  `shoal jit` asks the daemon (auto-spawning it if needed) and falls
  back to in-process analysis when unreachable — the verdict is never
  lost, and the path taken is reported on stderr as
  `shoal: jit served=daemon|local-fallback` (daemon-served requests
  also carry `trace=<id>`, the client-minted trace ID echoed by the
  server). Results are content-addressed: warm output is
  byte-identical to `shoal analyze --format json`. An overloaded
  daemon sheds requests with a structured reason instead of stalling;
  the client falls back locally at once
  (`served=local-fallback (daemon shed (queue-full))`).

BENCH-SERVICE OPTIONS:
    --clients N                 concurrent client threads (default 4)
    --requests N                requests per client (default 25)
    --socket PATH               target a running daemon (default:
                                spawn a private cold-cache daemon)
    --overload                  start the private daemon tiny (1 slot,
                                2-deep queue, 50ms wait) so the run
                                exercises shed + coalesce paths
    --format text|json|bench    output: human summary, a
                                shoal-bench-service/v1 document, or
                                shoal-bench/v1 `ns/iter` lines
                                (service/analyze_p50|p95|p99; with
                                --overload, the shed/coalesced rates)
  bench-service drives K closed-loop clients over the real socket with
  a deterministic figure-corpus workload, checks every served verdict
  against local analysis, and reports latency percentiles. Every
  verdict — served, coalesced, or shed-then-local — must match the
  local reference byte-for-byte (mismatches fail the run).

OBSERVABILITY (any subcommand):
    --stats           print a counters/gauges/histograms table on exit
    --trace FILE      write the recorded event stream as JSONL
    --profile         attach per-phase timings to analysis reports
";

fn read_script(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut src = String::new();
        std::io::stdin()
            .read_to_string(&mut src)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(src)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

/// Output format of `analyze`/`check`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
    Sarif,
}

fn cmd_analyze(args: &[String], obs: &ObsFlags) -> ExitCode {
    // Subcommand-local flags: --format, --emit-world-tree, --daemon.
    let mut format = OutputFormat::Text;
    let mut tree_file: Option<String> = None;
    let mut use_daemon = false;
    let mut incremental = false;
    let mut socket: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--daemon" => use_daemon = true,
            "--incremental" => incremental = true,
            "--socket" => {
                i += 1;
                let Some(s) = args.get(i) else {
                    eprintln!("shoal analyze: --socket needs a path");
                    return ExitCode::from(2);
                };
                socket = Some(s.clone());
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => OutputFormat::Text,
                    Some("json") => OutputFormat::Json,
                    Some("sarif") => OutputFormat::Sarif,
                    other => {
                        eprintln!(
                            "shoal analyze: --format must be text, json, or sarif (got {:?})",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--emit-world-tree" => {
                i += 1;
                let Some(f) = args.get(i) else {
                    eprintln!("shoal analyze: --emit-world-tree needs an output file");
                    return ExitCode::from(2);
                };
                tree_file = Some(f.clone());
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("shoal analyze: no scripts given");
        return ExitCode::from(2);
    }
    if use_daemon {
        // SARIF needs the full in-memory report (codeFlows walk the
        // witness trails), and the world-tree emitter needs DOT — both
        // beyond what the wire verdict carries.
        if format == OutputFormat::Sarif {
            eprintln!("shoal analyze: --daemon does not support --format sarif");
            return ExitCode::from(2);
        }
        if tree_file.is_some() {
            eprintln!("shoal analyze: --daemon does not support --emit-world-tree");
            return ExitCode::from(2);
        }
        return jit_analyze(&paths, format, socket.as_deref(), true, None, None, obs);
    }
    let opts = shoal_core::AnalysisOptions {
        profile: obs.profile,
        incremental,
        ..shoal_core::AnalysisOptions::default()
    };
    let mut worst = ExitCode::SUCCESS;
    let mut entries: Vec<(String, shoal_core::AnalysisReport)> = Vec::new();
    for path in &paths {
        let src = match read_script(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("shoal: {e}");
                return ExitCode::from(2);
            }
        };
        match shoal_core::analyze_source_with(&src, opts.clone()) {
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                worst = ExitCode::from(2);
            }
            Ok(report) => {
                if report
                    .diagnostics
                    .iter()
                    .any(|d| d.severity >= shoal_core::Severity::Warning)
                {
                    worst = ExitCode::FAILURE;
                }
                if format == OutputFormat::Text {
                    if report.diagnostics.is_empty() {
                        println!("{path}: no findings across all explored executions");
                    } else {
                        for d in &report.diagnostics {
                            println!("{path}: {d}");
                        }
                    }
                    println!(
                        "{path}: {} execution path(s) explored, peak {} live world(s){}",
                        report.terminal_worlds,
                        report.worlds_explored,
                        if report.incomplete { " (capped)" } else { "" }
                    );
                    for hit in &report.cap_hits {
                        println!(
                            "{path}: cap hit: {} at line {} ({} hit(s), {} world(s) dropped)",
                            hit.reason, hit.line, hit.hits, hit.dropped
                        );
                    }
                    if let Some(p) = &report.profile {
                        print!("{}", render_profile(path, p));
                    }
                }
                entries.push((path.clone(), report));
            }
        }
    }
    if let Some(file) = &tree_file {
        if let Err(e) = emit_world_trees(file, &entries) {
            eprintln!("shoal: {e}");
            return ExitCode::from(2);
        }
    }
    match format {
        OutputFormat::Text => {}
        OutputFormat::Json => {
            println!("{}", shoal_core::provenance::reports_json(&entries).to_text());
        }
        OutputFormat::Sarif => {
            println!("{}", shoal_core::provenance::sarif_json(&entries).to_text());
        }
    }
    worst
}

/// `shoal scan PATH...` — the hardened batch driver: panic-isolated,
/// budgeted, taxonomy-reporting (see `shoal_core::scan`).
fn cmd_scan(args: &[String]) -> ExitCode {
    let mut opts = shoal_core::ScanOptions::default();
    let mut json = false;
    let mut use_daemon = false;
    let mut socket: Option<String> = None;
    let mut roots: Vec<std::path::PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--daemon" => use_daemon = true,
            "--socket" => {
                i += 1;
                match args.get(i) {
                    Some(s) => socket = Some(s.clone()),
                    None => {
                        eprintln!("shoal scan: --socket needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--audit" => opts.audit = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    other => {
                        eprintln!(
                            "shoal scan: --format must be text or json (got {:?})",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--fuel" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(0) => opts.fuel = None,
                    Some(n) => opts.fuel = Some(n),
                    None => {
                        eprintln!("shoal scan: --fuel needs a number (0 = unlimited)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--deadline-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(0) => opts.deadline = None,
                    Some(n) => opts.deadline = Some(std::time::Duration::from_millis(n)),
                    None => {
                        eprintln!("shoal scan: --deadline-ms needs a number (0 = unlimited)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => opts.jobs = n,
                    None => {
                        eprintln!("shoal scan: --jobs needs a number (0 = auto)");
                        return ExitCode::from(2);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("shoal scan: unknown option {other:?}");
                return ExitCode::from(2);
            }
            p => roots.push(std::path::PathBuf::from(p)),
        }
        i += 1;
    }
    if roots.is_empty() {
        eprintln!("shoal scan: no paths given");
        return ExitCode::from(2);
    }
    if opts.audit && use_daemon {
        // Daemon-served results carry no coverage map (the wire body is
        // the frozen report shape), so routing an audited scan through
        // the daemon would silently hole the fleet fold.
        eprintln!("shoal scan: --audit runs in-process; drop --daemon");
        return ExitCode::from(2);
    }
    let summary = if use_daemon {
        let cfg = client_config(socket.as_deref());
        // Route each script through the daemon; a declined request
        // (unreachable, error) returns None and the scan driver runs
        // its usual shielded local path, marked `local-fallback`.
        let remote = move |_path: &str,
                           src: &str,
                           aopts: &shoal_core::AnalysisOptions|
              -> Option<shoal_core::RemoteReport> {
            let r = shoal_daemon::client::analyze(&cfg, src, aopts, true);
            match (&r.served, r.result) {
                (shoal_daemon::client::Served::Daemon { .. }, Ok(entry)) => {
                    Some(shoal_core::RemoteReport {
                        body: entry.body,
                        text: entry.text,
                        findings: entry.findings,
                    })
                }
                _ => None,
            }
        };
        shoal_core::scan_paths_with(&roots, &opts, Some(&remote))
    } else {
        shoal_core::scan_paths(&roots, &opts)
    };
    if json {
        let doc = if opts.audit { summary.to_json_audited() } else { summary.to_json() };
        println!("{}", doc.to_text());
    } else if opts.audit {
        print!("{}", summary.render_text_audited());
    } else {
        print!("{}", summary.render_text());
    }
    ExitCode::from(summary.exit_code() as u8)
}

/// `shoal audit DIR…` — scan a tree with coverage recording on and
/// print only the fleet `shoal-audit/v1` report: missing-spec
/// rankings, the precision-loss taxonomy with worst offenders, and
/// checker fired/suppressed counts. Always exits 0 on a completed
/// audit (it is an observability report, not a gate; `shoal scan`
/// carries the gating exit codes).
fn cmd_audit(args: &[String]) -> ExitCode {
    let mut opts = shoal_core::ScanOptions { audit: true, ..shoal_core::ScanOptions::default() };
    let mut json = false;
    let mut roots: Vec<std::path::PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    other => {
                        eprintln!(
                            "shoal audit: --format must be text or json (got {:?})",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--fuel" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(0) => opts.fuel = None,
                    Some(n) => opts.fuel = Some(n),
                    None => {
                        eprintln!("shoal audit: --fuel needs a number (0 = unlimited)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--deadline-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(0) => opts.deadline = None,
                    Some(n) => opts.deadline = Some(std::time::Duration::from_millis(n)),
                    None => {
                        eprintln!("shoal audit: --deadline-ms needs a number (0 = unlimited)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => opts.jobs = n,
                    None => {
                        eprintln!("shoal audit: --jobs needs a number (0 = auto)");
                        return ExitCode::from(2);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("shoal audit: unknown option {other:?}");
                return ExitCode::from(2);
            }
            p => roots.push(std::path::PathBuf::from(p)),
        }
        i += 1;
    }
    if roots.is_empty() {
        eprintln!("shoal audit: no paths given");
        return ExitCode::from(2);
    }
    let summary = shoal_core::scan_paths(&roots, &opts);
    let report = shoal_core::AuditReport::build(&summary);
    if json {
        println!("{}", report.to_json().to_text());
    } else {
        print!("{}", report.render_text());
    }
    ExitCode::SUCCESS
}

/// Builds a JIT client config from an optional `--socket` override.
fn client_config(socket: Option<&str>) -> shoal_daemon::client::ClientConfig {
    let mut cfg = shoal_daemon::client::ClientConfig::default();
    if let Some(s) = socket {
        cfg.socket = std::path::PathBuf::from(s);
    }
    cfg
}

/// `shoal jit SCRIPT...` — the thin just-in-time client: ask the
/// daemon (auto-spawning one if needed), fall back in-process when
/// unreachable. Stdout is byte-identical to `shoal analyze`; the path
/// taken is reported on stderr.
fn cmd_jit(args: &[String], obs: &ObsFlags) -> ExitCode {
    let mut format = OutputFormat::Text;
    let mut socket: Option<String> = None;
    let mut auto_spawn = true;
    let mut request_timeout_ms: Option<u64> = None;
    let mut retries: Option<u32> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-spawn" => auto_spawn = false,
            "--request-timeout-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n > 0 => request_timeout_ms = Some(n),
                    _ => {
                        eprintln!("shoal jit: --request-timeout-ms needs a positive number");
                        return ExitCode::from(2);
                    }
                }
            }
            "--retries" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(n) => retries = Some(n),
                    None => {
                        eprintln!("shoal jit: --retries needs a number (0 = no retries)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--socket" => {
                i += 1;
                match args.get(i) {
                    Some(s) => socket = Some(s.clone()),
                    None => {
                        eprintln!("shoal jit: --socket needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => OutputFormat::Text,
                    Some("json") => OutputFormat::Json,
                    other => {
                        eprintln!(
                            "shoal jit: --format must be text or json (got {:?})",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            other if other.starts_with("--") => {
                eprintln!("shoal jit: unknown option {other:?}");
                return ExitCode::from(2);
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("shoal jit: no scripts given");
        return ExitCode::from(2);
    }
    jit_analyze(
        &paths,
        format,
        socket.as_deref(),
        auto_spawn,
        request_timeout_ms,
        retries,
        obs,
    )
}

/// The shared client loop behind `shoal jit` and
/// `shoal analyze --daemon`: one request per script, `analyze`-shaped
/// stdout, a `served=` marker per script on stderr.
#[allow(clippy::too_many_arguments)]
fn jit_analyze(
    paths: &[String],
    format: OutputFormat,
    socket: Option<&str>,
    auto_spawn: bool,
    request_timeout_ms: Option<u64>,
    retries: Option<u32>,
    obs: &ObsFlags,
) -> ExitCode {
    let mut cfg = client_config(socket);
    cfg.auto_spawn = auto_spawn;
    if let Some(ms) = request_timeout_ms {
        cfg.request_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = retries {
        cfg.retries = n;
    }
    let opts = shoal_core::AnalysisOptions {
        profile: obs.profile,
        ..shoal_core::AnalysisOptions::default()
    };
    let mut worst = ExitCode::SUCCESS;
    let mut scripts: Vec<shoal_obs::json::Json> = Vec::new();
    for path in paths {
        let src = match read_script(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("shoal: {e}");
                return ExitCode::from(2);
            }
        };
        let r = shoal_daemon::client::analyze(&cfg, &src, &opts, false);
        // The machine-readable path marker: stdout stays identical to
        // a direct analyze, so the serving path lives on stderr.
        match &r.served {
            shoal_daemon::client::Served::Daemon { cache_hit } => {
                // `trace=` names the server-side trace for this exact
                // request (visible in `daemon top` / the JSONL log).
                let trace = r
                    .trace_id
                    .as_deref()
                    .map(|id| format!(" trace={id}"))
                    .unwrap_or_default();
                eprintln!(
                    "shoal: jit served=daemon cache={}{trace} {path}",
                    if *cache_hit { "hit" } else { "miss" }
                )
            }
            shoal_daemon::client::Served::Fallback { reason } => {
                eprintln!("shoal: jit served=local-fallback ({reason}) {path}")
            }
        }
        match r.result {
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                worst = ExitCode::from(2);
            }
            Ok(entry) => {
                if entry.findings > 0 {
                    worst = ExitCode::FAILURE;
                }
                if format == OutputFormat::Text {
                    print!("{}", render_jit_text(path, &entry));
                }
                let mut fields = vec![(
                    "path".to_string(),
                    shoal_obs::json::Json::Str(path.clone()),
                )];
                if let shoal_obs::json::Json::Obj(body_fields) = &entry.body {
                    fields.extend(body_fields.clone());
                }
                scripts.push(shoal_obs::json::Json::Obj(fields));
            }
        }
    }
    if format == OutputFormat::Json {
        println!(
            "{}",
            shoal_core::provenance::reports_envelope(scripts).to_text()
        );
    }
    worst
}

/// Renders a served verdict exactly as `shoal analyze` renders the
/// same report in text mode (the wire body carries every field the
/// text view needs).
fn render_jit_text(path: &str, entry: &shoal_daemon::cache::Entry) -> String {
    use shoal_obs::json::Json;
    use std::fmt::Write as _;
    let mut out = String::new();
    if entry.text.is_empty() {
        let _ = writeln!(out, "{path}: no findings across all explored executions");
    } else {
        for line in &entry.text {
            let _ = writeln!(out, "{path}: {line}");
        }
    }
    let num = |field: &str| {
        entry
            .body
            .get(field)
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let incomplete = matches!(entry.body.get("incomplete"), Some(Json::Bool(true)));
    let _ = writeln!(
        out,
        "{path}: {} execution path(s) explored, peak {} live world(s){}",
        num("terminal_worlds"),
        num("peak_live_worlds"),
        if incomplete { " (capped)" } else { "" }
    );
    if let Some(Json::Arr(hits)) = entry.body.get("cap_hits") {
        for hit in hits {
            let h = |f: &str| hit.get(f).and_then(Json::as_u64).unwrap_or(0);
            let _ = writeln!(
                out,
                "{path}: cap hit: {} at line {} ({} hit(s), {} world(s) dropped)",
                hit.get("reason").and_then(Json::as_str).unwrap_or("?"),
                h("line"),
                h("hits"),
                h("dropped")
            );
        }
    }
    out
}

/// `shoal daemon [stop|status|top]` — run or control the resident
/// analyzer.
fn cmd_lsp(args: &[String]) -> ExitCode {
    if !args.is_empty() {
        eprintln!("shoal lsp: takes no arguments (speaks LSP over stdio)");
        return ExitCode::from(2);
    }
    ExitCode::from(shoal_lsp::run_stdio() as u8)
}

fn cmd_daemon(args: &[String]) -> ExitCode {
    let mut action: Option<&str> = None;
    let mut socket: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut no_disk = false;
    let mut cache_capacity: usize = 512;
    let mut cache_disk_bytes: Option<u64> = None;
    let mut jobs: usize = 0;
    let mut queue_depth: usize = 256;
    let mut queue_wait_ms: u64 = 2_000;
    let mut trace_log: Option<String> = None;
    let mut status_json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "stop" | "status" | "top" if action.is_none() => action = Some(args[i].as_str()),
            "--format" => {
                i += 1;
                status_json = match args.get(i).map(String::as_str) {
                    Some("json") => true,
                    Some("text") => false,
                    other => {
                        eprintln!(
                            "shoal daemon: --format must be text or json (got {:?})",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--trace-log" => {
                i += 1;
                match args.get(i) {
                    Some(s) => trace_log = Some(s.clone()),
                    None => {
                        eprintln!("shoal daemon: --trace-log needs an output file (.jsonl)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--socket" => {
                i += 1;
                match args.get(i) {
                    Some(s) => socket = Some(s.clone()),
                    None => {
                        eprintln!("shoal daemon: --socket needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(s) => cache_dir = Some(s.clone()),
                    None => {
                        eprintln!("shoal daemon: --cache-dir needs a directory");
                        return ExitCode::from(2);
                    }
                }
            }
            "--no-disk-cache" => no_disk = true,
            "--cache-capacity" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => cache_capacity = n,
                    None => {
                        eprintln!("shoal daemon: --cache-capacity needs a number");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => jobs = n,
                    None => {
                        eprintln!("shoal daemon: --jobs needs a number (0 = auto)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--queue-depth" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => queue_depth = n,
                    None => {
                        eprintln!("shoal daemon: --queue-depth needs a number (0 = shed instead of queue)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--queue-wait-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) => queue_wait_ms = n,
                    None => {
                        eprintln!("shoal daemon: --queue-wait-ms needs a number");
                        return ExitCode::from(2);
                    }
                }
            }
            "--cache-disk-bytes" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n > 0 => cache_disk_bytes = Some(n),
                    _ => {
                        eprintln!("shoal daemon: --cache-disk-bytes needs a positive byte count");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("shoal daemon: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let socket_path = socket
        .map(std::path::PathBuf::from)
        .unwrap_or_else(shoal_daemon::default_socket_path);
    match action {
        Some("status") if status_json => {
            // JSON status is the full `shoal-stats/v1` telemetry
            // snapshot (the `stats` verb), not the terse status verb.
            match shoal_daemon::client::stats(&socket_path) {
                Ok(json) => {
                    println!("{}", json.to_text());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!(
                        "shoal daemon: no daemon at {} ({e})",
                        socket_path.display()
                    );
                    ExitCode::FAILURE
                }
            }
        }
        Some("status") => match shoal_daemon::client::status(&socket_path) {
            Ok(json) => {
                println!("{}", json.to_text());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!(
                    "shoal daemon: no daemon at {} ({e})",
                    socket_path.display()
                );
                ExitCode::FAILURE
            }
        },
        Some("top") => match shoal_daemon::client::stats(&socket_path) {
            Ok(json) => {
                print!("{}", render_daemon_top(&json));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!(
                    "shoal daemon: no daemon at {} ({e})",
                    socket_path.display()
                );
                ExitCode::FAILURE
            }
        },
        Some("stop") => match shoal_daemon::client::stop(&socket_path) {
            Ok(_) => {
                eprintln!("shoal daemon: stopped {}", socket_path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!(
                    "shoal daemon: no daemon at {} ({e})",
                    socket_path.display()
                );
                ExitCode::FAILURE
            }
        },
        _ => {
            let config = shoal_daemon::server::ServerConfig {
                socket: socket_path.clone(),
                cache_dir: if no_disk {
                    None
                } else {
                    Some(
                        cache_dir
                            .map(std::path::PathBuf::from)
                            .unwrap_or_else(shoal_daemon::default_cache_dir),
                    )
                },
                cache_capacity,
                cache_disk_bytes,
                jobs,
                queue_depth,
                queue_wait: std::time::Duration::from_millis(queue_wait_ms),
                trace_log: trace_log.map(std::path::PathBuf::from),
                ..shoal_daemon::server::ServerConfig::default()
            };
            eprintln!("shoal daemon: listening on {}", socket_path.display());
            match shoal_daemon::server::run(config) {
                Ok(()) => {
                    eprintln!("shoal daemon: shut down cleanly");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("shoal daemon: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}

/// Renders the `shoal-stats/v1` snapshot as a human `top`-style page:
/// identity line, per-`endpoint.outcome` request table with
/// percentiles, cache occupancy + outcome taxonomy, and the retained
/// slow-request log with per-phase breakdowns.
fn render_daemon_top(json: &shoal_obs::json::Json) -> String {
    use shoal_obs::json::Json;
    use std::fmt::Write as _;
    let mut out = String::new();
    let num = |j: &Json, f: &str| j.get(f).and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "shoal daemon v{} (pid {}) up {:.1}s, {} worker(s)",
        json.get("version").and_then(Json::as_str).unwrap_or("?"),
        num(json, "pid"),
        num(json, "uptime_ms") as f64 / 1000.0,
        num(json, "workers"),
    );

    let requests = json.get("requests").cloned().unwrap_or(Json::Null);
    let (mut hits, mut misses) = (0, 0);
    let mut rows: Vec<(String, u64)> = Vec::new();
    if let Some(Json::Obj(by)) = requests.get("by") {
        for (key, count) in by {
            let count = count.as_u64().unwrap_or(0);
            match key.as_str() {
                "analyze.hit" => hits = count,
                "analyze.miss" => misses = count,
                _ => {}
            }
            rows.push((key.clone(), count));
        }
    }
    let ratio = if hits + misses > 0 {
        format!(
            ", hit ratio {:.0}%",
            100.0 * hits as f64 / (hits + misses) as f64
        )
    } else {
        String::new()
    };
    let _ = writeln!(out, "requests: {} total{}", num(&requests, "total"), ratio);
    let latency = json.get("latency_us").cloned().unwrap_or(Json::Null);
    for (key, count) in &rows {
        let _ = write!(out, "  {key:<22} {count:>8}");
        if let Some(h) = latency.get(key) {
            let _ = write!(
                out,
                "   p50 {:>7}µs  p95 {:>7}µs  p99 {:>7}µs",
                num(h, "p50"),
                num(h, "p95"),
                num(h, "p99"),
            );
        }
        let _ = writeln!(out);
    }

    if let Some(cache) = json.get("cache") {
        let _ = writeln!(
            out,
            "cache: {}/{} hot, {} on disk; {} hot hit(s), {} disk hit(s), {} miss(es) ({} corrupt), {} eviction(s), {} write failure(s)",
            num(cache, "hot_entries"),
            num(cache, "capacity"),
            num(cache, "disk_entries"),
            num(cache, "hot_hits"),
            num(cache, "disk_hits"),
            num(cache, "misses"),
            num(cache, "corrupt_misses"),
            num(cache, "evictions"),
            num(cache, "write_failures"),
        );
    }

    if let Some(shield) = json.get("shield") {
        let sheds_by = shield.get("sheds_by").cloned().unwrap_or(Json::Null);
        let _ = writeln!(
            out,
            "shield: {} slot(s), queue {}/{} (highwater {}), {} admitted, {} shed ({} queue-full, {} queue-timeout), {} coalesced",
            num(shield, "concurrency"),
            num(shield, "queued"),
            num(shield, "queue_depth"),
            num(shield, "queue_highwater"),
            num(shield, "admitted"),
            num(shield, "sheds"),
            num(&sheds_by, "queue-full"),
            num(&sheds_by, "queue-timeout"),
            num(shield, "coalesced"),
        );
    }

    if let Some(Json::Arr(slow)) = json.get("slow_requests") {
        if !slow.is_empty() {
            let _ = writeln!(out, "slowest request(s):");
            for t in slow {
                if let Some(trace) = shoal_obs::Trace::from_json(t) {
                    for line in trace.render_text().lines() {
                        let _ = writeln!(out, "  {line}");
                    }
                }
            }
        }
    }

    if let Some(audit) = json.get("audit") {
        let _ = writeln!(
            out,
            "audit: {} script(s) analyzed, {} degraded, {} command(s) missing specs",
            num(audit, "analyzed_scripts"),
            num(audit, "degraded_scripts"),
            num(audit, "missing_spec_commands"),
        );
        if let Some(Json::Arr(top)) = audit.get("top_missing_specs") {
            for entry in top {
                let _ = writeln!(
                    out,
                    "  {:<22} {:>4} script(s)  {:>4} site(s)  score {}",
                    audit_str(entry, "command"),
                    num(entry, "scripts"),
                    num(entry, "sites"),
                    num(entry, "score"),
                );
            }
        }
        if let Some(Json::Obj(losses)) = audit.get("losses") {
            if !losses.is_empty() {
                let causes: Vec<String> = losses
                    .iter()
                    .map(|(cause, n)| format!("{cause} {}", n.as_u64().unwrap_or(0)))
                    .collect();
                let _ = writeln!(out, "  losses: {}", causes.join(", "));
            }
        }
    }
    out
}

/// String field accessor for the audit block of a stats snapshot.
fn audit_str<'j>(j: &'j shoal_obs::json::Json, field: &str) -> &'j str {
    j.get(field)
        .and_then(shoal_obs::json::Json::as_str)
        .unwrap_or("?")
}

/// `shoal bench-service` — closed-loop load against the daemon,
/// reporting latency percentiles (see `shoal_daemon::bench_service`).
fn cmd_bench_service(args: &[String]) -> ExitCode {
    let mut config = shoal_daemon::bench_service::BenchConfig::default();
    let mut format = "text";
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--clients" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => config.clients = n,
                    _ => {
                        eprintln!("shoal bench-service: --clients needs a positive number");
                        return ExitCode::from(2);
                    }
                }
            }
            "--requests" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => config.requests = n,
                    _ => {
                        eprintln!("shoal bench-service: --requests needs a positive number");
                        return ExitCode::from(2);
                    }
                }
            }
            "--socket" => {
                i += 1;
                match args.get(i) {
                    Some(s) => config.socket = Some(std::path::PathBuf::from(s)),
                    None => {
                        eprintln!("shoal bench-service: --socket needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--overload" => config.overload = true,
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some(f @ ("text" | "json" | "bench")) => f,
                    other => {
                        eprintln!(
                            "shoal bench-service: --format must be text, json, or bench (got {:?})",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            other => {
                eprintln!("shoal bench-service: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    match shoal_daemon::bench_service::run_bench(&config) {
        Ok(report) => {
            match format {
                "json" => println!("{}", report.to_json().to_text()),
                // Overload runs emit only the rate keys: the percentile
                // keys under a deliberately tiny daemon would poison
                // the min-keeping BENCH_daemon.json harvest.
                "bench" if config.overload => print!("{}", report.render_overload_bench_lines()),
                "bench" => print!("{}", report.render_bench_lines()),
                _ => print!("{}", report.render_text()),
            }
            if report.mismatches > 0 {
                eprintln!(
                    "shoal bench-service: {} verdict(s) diverged from local analysis",
                    report.mismatches
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shoal bench-service: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Writes the world tree(s) for the analyzed scripts. `.dot` writes
/// GraphViz DOT, `.json` writes JSON, and any other name writes both
/// (as `FILE.dot` + `FILE.json`). With several scripts, each gets a
/// numbered file (`FILE.2.dot`, …) in input order.
fn emit_world_trees(
    file: &str,
    entries: &[(String, shoal_core::AnalysisReport)],
) -> Result<(), String> {
    let write = |path: &str, contents: &str| -> Result<(), String> {
        std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("shoal: wrote world tree to {path}");
        Ok(())
    };
    for (i, (_, report)) in entries.iter().enumerate() {
        let numbered = |name: &str| -> String {
            if i == 0 {
                name.to_string()
            } else {
                match name.rsplit_once('.') {
                    Some((stem, ext)) => format!("{stem}.{}.{ext}", i + 1),
                    None => format!("{name}.{}", i + 1),
                }
            }
        };
        let tree = &report.world_tree;
        if file.ends_with(".dot") {
            write(&numbered(file), &tree.to_dot())?;
        } else if file.ends_with(".json") {
            write(&numbered(file), &tree.to_json().to_text())?;
        } else {
            write(&numbered(&format!("{file}.dot")), &tree.to_dot())?;
            write(&numbered(&format!("{file}.json")), &tree.to_json().to_text())?;
        }
    }
    Ok(())
}

fn render_profile(path: &str, p: &shoal_core::ProfileReport) -> String {
    let rows = vec![
        ("parse".to_string(), format!("{} µs", p.parse_us)),
        ("exec".to_string(), format!("{} µs", p.exec_us)),
        ("idempotence".to_string(), format!("{} µs", p.idempotence_us)),
        ("report".to_string(), format!("{} µs", p.report_us)),
        ("total".to_string(), format!("{} µs", p.total_us)),
        (
            "peak live worlds".to_string(),
            p.peak_live_worlds.to_string(),
        ),
        ("forks".to_string(), p.forks.to_string()),
        ("worlds pruned".to_string(), p.worlds_pruned.to_string()),
        ("cap dropped".to_string(), p.cap_dropped.to_string()),
    ];
    shoal_obs::stats::render_table(&format!("profile ({path})"), &rows)
}

fn cmd_lint(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("shoal lint: no scripts given");
        return ExitCode::from(2);
    }
    let mut worst = ExitCode::SUCCESS;
    for path in paths {
        let src = match read_script(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("shoal: {e}");
                return ExitCode::from(2);
            }
        };
        match shoal_lint::lint_source(&src) {
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                worst = ExitCode::from(2);
            }
            Ok(lints) => {
                for l in &lints {
                    println!("{path}: {l}");
                }
                if !lints.is_empty() {
                    worst = ExitCode::FAILURE;
                }
            }
        }
    }
    worst
}

fn cmd_typecheck(args: &[String]) -> ExitCode {
    let Some(src) = args.first() else {
        eprintln!("shoal typecheck: give a pipeline as one argument");
        return ExitCode::from(2);
    };
    let script = match shoal_shparse::parse_script(src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(item) = script.items.first() else {
        eprintln!("empty input");
        return ExitCode::from(2);
    };
    let pipe = &item.and_or.first;
    let engine = shoal_core::engine::Engine::new(shoal_core::AnalysisOptions::default());
    let mut world = shoal_core::World::initial();
    let final_ty = engine.stream_check_pipeline(&mut world, pipe, None);
    for d in &world.diags {
        println!("{d}");
    }
    match final_ty {
        Some(ty) => {
            println!("final output line type: {ty}");
            let aliases = shoal_streamty::TypeAliases::builtin();
            if let Some(name) = aliases.type_of(&ty) {
                println!("  (a subtype of `{name}`)");
            }
            if world.diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        None => {
            println!("pipeline contains stages the type system cannot model");
            ExitCode::FAILURE
        }
    }
}

fn cmd_mine(names: &[String]) -> ExitCode {
    let names: Vec<String> = if names.is_empty() {
        shoal_miner::manpages::all_documented()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        names.to_vec()
    };
    for name in &names {
        match shoal_miner::mine_command(name) {
            Some(spec) => {
                print!("{}", shoal_spec::text::render_spec(&spec));
                println!();
            }
            None => eprintln!("shoal mine: no documentation for {name:?}"),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let mut policy = shoal_monitor::Policy::default();
    let mut script_path: Option<&String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-RW" | "--no-rw" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--no-RW needs a path prefix");
                    return ExitCode::from(2);
                };
                policy.no_read.push(p.clone());
                policy.no_write.push(p.clone());
            }
            "--no-read" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--no-read needs a path prefix");
                    return ExitCode::from(2);
                };
                policy.no_read.push(p.clone());
            }
            "--no-write" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--no-write needs a path prefix");
                    return ExitCode::from(2);
                };
                policy.no_write.push(p.clone());
            }
            other if !other.starts_with("--") => script_path = Some(&args[i]),
            other => {
                eprintln!("shoal verify: unknown option {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let Some(path) = script_path else {
        eprintln!("shoal verify: no script given (use - for stdin)");
        return ExitCode::from(2);
    };
    let src = match read_script(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("shoal: {e}");
            return ExitCode::from(2);
        }
    };
    let specs = shoal_spec::SpecLibrary::builtin();
    match shoal_monitor::verify_source(&src, &policy, &specs) {
        Err(e) => {
            eprintln!("parse error: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            for f in &report.findings {
                let severity = match f.certainty {
                    shoal_monitor::verify::Certainty::Definite => shoal_core::Severity::Error,
                    shoal_monitor::verify::Certainty::Possible => shoal_core::Severity::Warning,
                };
                let diag = shoal_core::Diagnostic::new(
                    shoal_core::DiagCode::PolicyViolation,
                    severity,
                    f.span,
                    format!(
                        "{:?} {} of protected {} by `{}`",
                        f.certainty, f.access, f.prefix, f.what
                    ),
                );
                println!("{diag}");
            }
            for (span, what) in &report.unclassified {
                println!("{span}: unclassifiable command `{what}` — wrap with runtime containment");
            }
            if report.conclusively_safe() {
                println!(
                    "conclusively safe: {} command(s) verified against the policy",
                    report.commands_checked
                );
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn cmd_monitor(args: &[String]) -> ExitCode {
    let mut ty_text: Option<&String> = None;
    let mut halt = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--type" => {
                i += 1;
                ty_text = args.get(i);
            }
            "--halt" => halt = true,
            other => {
                eprintln!("shoal monitor: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let Some(ty_text) = ty_text else {
        eprintln!("shoal monitor: --type is required");
        return ExitCode::from(2);
    };
    let aliases = shoal_streamty::TypeAliases::builtin();
    let ty = match aliases.resolve(ty_text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("shoal monitor: {e}");
            return ExitCode::from(2);
        }
    };
    let policy = if halt {
        shoal_monitor::OnViolation::Halt
    } else {
        shoal_monitor::OnViolation::Flag
    };
    let mut monitor = shoal_monitor::StreamMonitor::new(&ty, policy);
    let stdin = std::io::stdin();
    let mut reader = BufReader::new(stdin.lock());
    let stdout = std::io::stdout();
    let mut writer = stdout.lock();
    match monitor.run(&mut reader, &mut writer) {
        Ok(report) => {
            let _ = writer.flush();
            if report.violations > 0 {
                eprintln!(
                    "shoal monitor: {} violation(s), first at line {}{}",
                    report.violations,
                    report.first_violation.unwrap_or(0),
                    if report.halted {
                        " — stream halted"
                    } else {
                        ""
                    }
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("shoal monitor: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_coach(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("shoal coach: no scripts given");
        return ExitCode::from(2);
    }
    let specs = shoal_spec::SpecLibrary::builtin();
    for path in paths {
        let src = match read_script(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("shoal: {e}");
                return ExitCode::from(2);
            }
        };
        match shoal_shparse::parse_script(&src) {
            Err(e) => eprintln!("{path}: parse error: {e}"),
            Ok(script) => {
                let suggestions = shoal_core::coach::coach(&script, &specs);
                if suggestions.is_empty() {
                    println!("{path}: no optimization opportunities found");
                }
                for s in suggestions {
                    println!("{path}: {s}");
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_explain(names: &[String]) -> ExitCode {
    // Dispatch: a path to an existing script (or "-") replays a
    // finding's witness path; anything else is a spec name.
    if let Some(first) = names.first() {
        if first == "-" || std::path::Path::new(first).is_file() {
            return cmd_explain_script(names);
        }
    }
    let specs = shoal_spec::SpecLibrary::builtin();
    if names.is_empty() {
        println!("specified commands: {}", specs.names().join(", "));
        return ExitCode::SUCCESS;
    }
    let mut ok = true;
    for name in names {
        match specs.get(name) {
            Some(spec) => print!("{}", shoal_spec::text::render_spec(spec)),
            None => {
                eprintln!("shoal explain: no specification for {name:?}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `shoal explain SCRIPT [INDEX]`: analyze the script and replay the
/// witness execution of finding #INDEX (default 0) step by step.
fn cmd_explain_script(args: &[String]) -> ExitCode {
    let path = &args[0];
    let index: usize = match args.get(1) {
        None => 0,
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("shoal explain: finding index must be a number (got {s:?})");
                return ExitCode::from(2);
            }
        },
    };
    let src = match read_script(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("shoal: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match shoal_core::analyze_source(&src) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: parse error: {e}");
            return ExitCode::from(2);
        }
    };
    match shoal_core::provenance::explain_diag(path, &src, &report, index) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shoal explain: {e}");
            ExitCode::FAILURE
        }
    }
}
