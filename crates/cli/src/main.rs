//! `shoal` — semantics-driven static analysis for Unix shell programs.
//!
//! Subcommands:
//!
//! * `analyze SCRIPT…` — run the full symbolic analysis (the paper's
//!   headline: catches Fig. 1, proves Fig. 2, catches Fig. 3).
//! * `lint SCRIPT…` — the ShellCheck-style syntactic baseline, for
//!   comparison.
//! * `typecheck 'PIPELINE'` — stream-type a pipeline and print each
//!   stage's line types.
//! * `mine COMMAND…` — run the Fig. 4 spec-mining pipeline and print
//!   the mined specification.
//! * `verify --no-RW PREFIX SCRIPT` — the §5 security checker.
//! * `monitor --type T [--halt]` — the runtime stream monitor
//!   (stdin → stdout).
//! * `explain SCRIPT [INDEX]` — replay the witness execution path of a
//!   finding (its provenance trail) step by step.
//! * `explain COMMAND` — print the ground-truth specification.

use std::io::{BufReader, Read, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    // Arm test-only fault injection when SHOAL_FAILPOINTS is set
    // (no-op — one relaxed atomic load per site — otherwise).
    shoal_obs::failpoint::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let (obs, rest) = match ObsFlags::extract(rest) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("shoal: {e}");
            return ExitCode::from(2);
        }
    };
    let rest = &rest[..];
    let code = match cmd.as_str() {
        "analyze" | "check" => cmd_analyze(rest, &obs),
        "scan" => cmd_scan(rest),
        "lint" => cmd_lint(rest),
        "typecheck" => cmd_typecheck(rest),
        "mine" => cmd_mine(rest),
        "verify" => cmd_verify(rest),
        "monitor" => cmd_monitor(rest),
        "explain" => cmd_explain(rest),
        "coach" => cmd_coach(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("shoal: unknown subcommand {other:?}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    };
    if let Err(e) = obs.finish() {
        eprintln!("shoal: {e}");
        return ExitCode::from(2);
    }
    code
}

/// Cross-cutting observability flags, accepted by every subcommand:
/// `--stats` prints a metrics table on exit, `--trace FILE` writes the
/// recorded event stream as JSONL, `--profile` attaches per-phase
/// timings to analysis reports. Any of them turns the recorder on;
/// without them the instrumentation stays disabled (one atomic load).
struct ObsFlags {
    stats: bool,
    trace: Option<String>,
    profile: bool,
}

impl ObsFlags {
    fn extract(args: &[String]) -> Result<(ObsFlags, Vec<String>), String> {
        let mut flags = ObsFlags {
            stats: false,
            trace: None,
            profile: false,
        };
        let mut rest = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--stats" => flags.stats = true,
                "--profile" => flags.profile = true,
                "--trace" => {
                    i += 1;
                    let Some(path) = args.get(i) else {
                        return Err("--trace needs an output file (.jsonl)".into());
                    };
                    flags.trace = Some(path.clone());
                }
                _ => rest.push(args[i].clone()),
            }
            i += 1;
        }
        if flags.stats || flags.trace.is_some() || flags.profile {
            shoal_obs::install();
        }
        Ok((flags, rest))
    }

    fn finish(&self) -> Result<(), String> {
        if let Some(path) = &self.trace {
            let events = shoal_obs::take_events();
            let jsonl = shoal_obs::trace_to_jsonl(&events);
            std::fs::write(path, jsonl).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("shoal: wrote {} trace event(s) to {path}", events.len());
        }
        if self.stats {
            let snap = shoal_obs::snapshot();
            eprint!("{}", shoal_obs::stats::render_snapshot(&snap));
        }
        Ok(())
    }
}

const USAGE: &str = "\
shoal — semantics-driven static analysis for Unix shell programs

USAGE:
    shoal analyze SCRIPT...            symbolic analysis (all checkers)
    shoal check SCRIPT...              alias for analyze
    shoal scan PATH...                 hardened batch analysis of a tree
    shoal lint SCRIPT...               syntactic baseline linter
    shoal typecheck 'CMD | CMD | ...'  stream-type a pipeline
    shoal mine COMMAND...              mine specs from docs + probing
    shoal verify --no-RW PREFIX SCRIPT check a script against a policy
    shoal monitor --type T [--halt]    monitor stdin line types
    shoal explain SCRIPT [INDEX]       replay the witness path of finding #INDEX
    shoal explain COMMAND              print a command's specification
    shoal coach SCRIPT...              optimization suggestions (§5)

ANALYZE/CHECK OPTIONS:
    --format text|json|sarif    output format (json embeds provenance;
                                sarif is SARIF 2.1.0 with codeFlows)
    --emit-world-tree FILE      write the explored world tree (.dot ->
                                GraphViz, .json -> JSON, else both)

SCAN OPTIONS:
    --format text|json          output format (default text)
    --fuel N                    symbolic-step budget per script
                                (default 200000; 0 = unlimited)
    --deadline-ms N             wall-clock budget per script in ms
                                (default 2000; 0 = unlimited)
    --jobs N                    worker threads for the batch
                                (default 0 = available parallelism)
  scan walks directories for .sh / shell-shebang files, isolates each
  script's analysis against panics (retrying once with tightened
  budgets), and exits 0 = clean, 1 = findings, 3 = some scripts only
  partially analyzed (parse recovery or budget), 4 = a script panicked.
  Output is byte-identical for any --jobs value.

OBSERVABILITY (any subcommand):
    --stats           print a counters/gauges/histograms table on exit
    --trace FILE      write the recorded event stream as JSONL
    --profile         attach per-phase timings to analysis reports
";

fn read_script(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut src = String::new();
        std::io::stdin()
            .read_to_string(&mut src)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(src)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

/// Output format of `analyze`/`check`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
    Sarif,
}

fn cmd_analyze(args: &[String], obs: &ObsFlags) -> ExitCode {
    // Subcommand-local flags: --format, --emit-world-tree.
    let mut format = OutputFormat::Text;
    let mut tree_file: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => OutputFormat::Text,
                    Some("json") => OutputFormat::Json,
                    Some("sarif") => OutputFormat::Sarif,
                    other => {
                        eprintln!(
                            "shoal analyze: --format must be text, json, or sarif (got {:?})",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--emit-world-tree" => {
                i += 1;
                let Some(f) = args.get(i) else {
                    eprintln!("shoal analyze: --emit-world-tree needs an output file");
                    return ExitCode::from(2);
                };
                tree_file = Some(f.clone());
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("shoal analyze: no scripts given");
        return ExitCode::from(2);
    }
    let opts = shoal_core::AnalysisOptions {
        profile: obs.profile,
        ..shoal_core::AnalysisOptions::default()
    };
    let mut worst = ExitCode::SUCCESS;
    let mut entries: Vec<(String, shoal_core::AnalysisReport)> = Vec::new();
    for path in &paths {
        let src = match read_script(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("shoal: {e}");
                return ExitCode::from(2);
            }
        };
        match shoal_core::analyze_source_with(&src, opts.clone()) {
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                worst = ExitCode::from(2);
            }
            Ok(report) => {
                if report
                    .diagnostics
                    .iter()
                    .any(|d| d.severity >= shoal_core::Severity::Warning)
                {
                    worst = ExitCode::FAILURE;
                }
                if format == OutputFormat::Text {
                    if report.diagnostics.is_empty() {
                        println!("{path}: no findings across all explored executions");
                    } else {
                        for d in &report.diagnostics {
                            println!("{path}: {d}");
                        }
                    }
                    println!(
                        "{path}: {} execution path(s) explored, peak {} live world(s){}",
                        report.terminal_worlds,
                        report.worlds_explored,
                        if report.incomplete { " (capped)" } else { "" }
                    );
                    for hit in &report.cap_hits {
                        println!(
                            "{path}: cap hit: {} at line {} ({} hit(s), {} world(s) dropped)",
                            hit.reason, hit.line, hit.hits, hit.dropped
                        );
                    }
                    if let Some(p) = &report.profile {
                        print!("{}", render_profile(path, p));
                    }
                }
                entries.push((path.clone(), report));
            }
        }
    }
    if let Some(file) = &tree_file {
        if let Err(e) = emit_world_trees(file, &entries) {
            eprintln!("shoal: {e}");
            return ExitCode::from(2);
        }
    }
    match format {
        OutputFormat::Text => {}
        OutputFormat::Json => {
            println!("{}", shoal_core::provenance::reports_json(&entries).to_text());
        }
        OutputFormat::Sarif => {
            println!("{}", shoal_core::provenance::sarif_json(&entries).to_text());
        }
    }
    worst
}

/// `shoal scan PATH...` — the hardened batch driver: panic-isolated,
/// budgeted, taxonomy-reporting (see `shoal_core::scan`).
fn cmd_scan(args: &[String]) -> ExitCode {
    let mut opts = shoal_core::ScanOptions::default();
    let mut json = false;
    let mut roots: Vec<std::path::PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    other => {
                        eprintln!(
                            "shoal scan: --format must be text or json (got {:?})",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--fuel" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(0) => opts.fuel = None,
                    Some(n) => opts.fuel = Some(n),
                    None => {
                        eprintln!("shoal scan: --fuel needs a number (0 = unlimited)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--deadline-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(0) => opts.deadline = None,
                    Some(n) => opts.deadline = Some(std::time::Duration::from_millis(n)),
                    None => {
                        eprintln!("shoal scan: --deadline-ms needs a number (0 = unlimited)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => opts.jobs = n,
                    None => {
                        eprintln!("shoal scan: --jobs needs a number (0 = auto)");
                        return ExitCode::from(2);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("shoal scan: unknown option {other:?}");
                return ExitCode::from(2);
            }
            p => roots.push(std::path::PathBuf::from(p)),
        }
        i += 1;
    }
    if roots.is_empty() {
        eprintln!("shoal scan: no paths given");
        return ExitCode::from(2);
    }
    let summary = shoal_core::scan_paths(&roots, &opts);
    if json {
        println!("{}", summary.to_json().to_text());
    } else {
        print!("{}", summary.render_text());
    }
    ExitCode::from(summary.exit_code() as u8)
}

/// Writes the world tree(s) for the analyzed scripts. `.dot` writes
/// GraphViz DOT, `.json` writes JSON, and any other name writes both
/// (as `FILE.dot` + `FILE.json`). With several scripts, each gets a
/// numbered file (`FILE.2.dot`, …) in input order.
fn emit_world_trees(
    file: &str,
    entries: &[(String, shoal_core::AnalysisReport)],
) -> Result<(), String> {
    let write = |path: &str, contents: &str| -> Result<(), String> {
        std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("shoal: wrote world tree to {path}");
        Ok(())
    };
    for (i, (_, report)) in entries.iter().enumerate() {
        let numbered = |name: &str| -> String {
            if i == 0 {
                name.to_string()
            } else {
                match name.rsplit_once('.') {
                    Some((stem, ext)) => format!("{stem}.{}.{ext}", i + 1),
                    None => format!("{name}.{}", i + 1),
                }
            }
        };
        let tree = &report.world_tree;
        if file.ends_with(".dot") {
            write(&numbered(file), &tree.to_dot())?;
        } else if file.ends_with(".json") {
            write(&numbered(file), &tree.to_json().to_text())?;
        } else {
            write(&numbered(&format!("{file}.dot")), &tree.to_dot())?;
            write(&numbered(&format!("{file}.json")), &tree.to_json().to_text())?;
        }
    }
    Ok(())
}

fn render_profile(path: &str, p: &shoal_core::ProfileReport) -> String {
    let rows = vec![
        ("parse".to_string(), format!("{} µs", p.parse_us)),
        ("exec".to_string(), format!("{} µs", p.exec_us)),
        ("idempotence".to_string(), format!("{} µs", p.idempotence_us)),
        ("report".to_string(), format!("{} µs", p.report_us)),
        ("total".to_string(), format!("{} µs", p.total_us)),
        (
            "peak live worlds".to_string(),
            p.peak_live_worlds.to_string(),
        ),
        ("forks".to_string(), p.forks.to_string()),
        ("worlds pruned".to_string(), p.worlds_pruned.to_string()),
        ("cap dropped".to_string(), p.cap_dropped.to_string()),
    ];
    shoal_obs::stats::render_table(&format!("profile ({path})"), &rows)
}

fn cmd_lint(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("shoal lint: no scripts given");
        return ExitCode::from(2);
    }
    let mut worst = ExitCode::SUCCESS;
    for path in paths {
        let src = match read_script(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("shoal: {e}");
                return ExitCode::from(2);
            }
        };
        match shoal_lint::lint_source(&src) {
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                worst = ExitCode::from(2);
            }
            Ok(lints) => {
                for l in &lints {
                    println!("{path}: {l}");
                }
                if !lints.is_empty() {
                    worst = ExitCode::FAILURE;
                }
            }
        }
    }
    worst
}

fn cmd_typecheck(args: &[String]) -> ExitCode {
    let Some(src) = args.first() else {
        eprintln!("shoal typecheck: give a pipeline as one argument");
        return ExitCode::from(2);
    };
    let script = match shoal_shparse::parse_script(src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(item) = script.items.first() else {
        eprintln!("empty input");
        return ExitCode::from(2);
    };
    let pipe = &item.and_or.first;
    let engine = shoal_core::engine::Engine::new(shoal_core::AnalysisOptions::default());
    let mut world = shoal_core::World::initial();
    let final_ty = engine.stream_check_pipeline(&mut world, pipe, None);
    for d in &world.diags {
        println!("{d}");
    }
    match final_ty {
        Some(ty) => {
            println!("final output line type: {ty}");
            let aliases = shoal_streamty::TypeAliases::builtin();
            if let Some(name) = aliases.type_of(&ty) {
                println!("  (a subtype of `{name}`)");
            }
            if world.diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        None => {
            println!("pipeline contains stages the type system cannot model");
            ExitCode::FAILURE
        }
    }
}

fn cmd_mine(names: &[String]) -> ExitCode {
    let names: Vec<String> = if names.is_empty() {
        shoal_miner::manpages::all_documented()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        names.to_vec()
    };
    for name in &names {
        match shoal_miner::mine_command(name) {
            Some(spec) => {
                print!("{}", shoal_spec::text::render_spec(&spec));
                println!();
            }
            None => eprintln!("shoal mine: no documentation for {name:?}"),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let mut policy = shoal_monitor::Policy::default();
    let mut script_path: Option<&String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-RW" | "--no-rw" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--no-RW needs a path prefix");
                    return ExitCode::from(2);
                };
                policy.no_read.push(p.clone());
                policy.no_write.push(p.clone());
            }
            "--no-read" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--no-read needs a path prefix");
                    return ExitCode::from(2);
                };
                policy.no_read.push(p.clone());
            }
            "--no-write" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--no-write needs a path prefix");
                    return ExitCode::from(2);
                };
                policy.no_write.push(p.clone());
            }
            other if !other.starts_with("--") => script_path = Some(&args[i]),
            other => {
                eprintln!("shoal verify: unknown option {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let Some(path) = script_path else {
        eprintln!("shoal verify: no script given (use - for stdin)");
        return ExitCode::from(2);
    };
    let src = match read_script(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("shoal: {e}");
            return ExitCode::from(2);
        }
    };
    let specs = shoal_spec::SpecLibrary::builtin();
    match shoal_monitor::verify_source(&src, &policy, &specs) {
        Err(e) => {
            eprintln!("parse error: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            for f in &report.findings {
                let severity = match f.certainty {
                    shoal_monitor::verify::Certainty::Definite => shoal_core::Severity::Error,
                    shoal_monitor::verify::Certainty::Possible => shoal_core::Severity::Warning,
                };
                let diag = shoal_core::Diagnostic::new(
                    shoal_core::DiagCode::PolicyViolation,
                    severity,
                    f.span,
                    format!(
                        "{:?} {} of protected {} by `{}`",
                        f.certainty, f.access, f.prefix, f.what
                    ),
                );
                println!("{diag}");
            }
            for (span, what) in &report.unclassified {
                println!("{span}: unclassifiable command `{what}` — wrap with runtime containment");
            }
            if report.conclusively_safe() {
                println!(
                    "conclusively safe: {} command(s) verified against the policy",
                    report.commands_checked
                );
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn cmd_monitor(args: &[String]) -> ExitCode {
    let mut ty_text: Option<&String> = None;
    let mut halt = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--type" => {
                i += 1;
                ty_text = args.get(i);
            }
            "--halt" => halt = true,
            other => {
                eprintln!("shoal monitor: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let Some(ty_text) = ty_text else {
        eprintln!("shoal monitor: --type is required");
        return ExitCode::from(2);
    };
    let aliases = shoal_streamty::TypeAliases::builtin();
    let ty = match aliases.resolve(ty_text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("shoal monitor: {e}");
            return ExitCode::from(2);
        }
    };
    let policy = if halt {
        shoal_monitor::OnViolation::Halt
    } else {
        shoal_monitor::OnViolation::Flag
    };
    let mut monitor = shoal_monitor::StreamMonitor::new(&ty, policy);
    let stdin = std::io::stdin();
    let mut reader = BufReader::new(stdin.lock());
    let stdout = std::io::stdout();
    let mut writer = stdout.lock();
    match monitor.run(&mut reader, &mut writer) {
        Ok(report) => {
            let _ = writer.flush();
            if report.violations > 0 {
                eprintln!(
                    "shoal monitor: {} violation(s), first at line {}{}",
                    report.violations,
                    report.first_violation.unwrap_or(0),
                    if report.halted {
                        " — stream halted"
                    } else {
                        ""
                    }
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("shoal monitor: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_coach(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("shoal coach: no scripts given");
        return ExitCode::from(2);
    }
    let specs = shoal_spec::SpecLibrary::builtin();
    for path in paths {
        let src = match read_script(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("shoal: {e}");
                return ExitCode::from(2);
            }
        };
        match shoal_shparse::parse_script(&src) {
            Err(e) => eprintln!("{path}: parse error: {e}"),
            Ok(script) => {
                let suggestions = shoal_core::coach::coach(&script, &specs);
                if suggestions.is_empty() {
                    println!("{path}: no optimization opportunities found");
                }
                for s in suggestions {
                    println!("{path}: {s}");
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_explain(names: &[String]) -> ExitCode {
    // Dispatch: a path to an existing script (or "-") replays a
    // finding's witness path; anything else is a spec name.
    if let Some(first) = names.first() {
        if first == "-" || std::path::Path::new(first).is_file() {
            return cmd_explain_script(names);
        }
    }
    let specs = shoal_spec::SpecLibrary::builtin();
    if names.is_empty() {
        println!("specified commands: {}", specs.names().join(", "));
        return ExitCode::SUCCESS;
    }
    let mut ok = true;
    for name in names {
        match specs.get(name) {
            Some(spec) => print!("{}", shoal_spec::text::render_spec(spec)),
            None => {
                eprintln!("shoal explain: no specification for {name:?}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `shoal explain SCRIPT [INDEX]`: analyze the script and replay the
/// witness execution of finding #INDEX (default 0) step by step.
fn cmd_explain_script(args: &[String]) -> ExitCode {
    let path = &args[0];
    let index: usize = match args.get(1) {
        None => 0,
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("shoal explain: finding index must be a number (got {s:?})");
                return ExitCode::from(2);
            }
        },
    };
    let src = match read_script(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("shoal: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match shoal_core::analyze_source(&src) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: parse error: {e}");
            return ExitCode::from(2);
        }
    };
    match shoal_core::provenance::explain_diag(path, &src, &report, index) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shoal explain: {e}");
            ExitCode::FAILURE
        }
    }
}
