//! Concrete path algebra.
//!
//! The shell manipulates paths as strings, and many distinct strings name
//! the same location (`/a//b/.`, `/a/b`, `/a/c/../b`). Reasoning like the
//! paper's Fig. 2 — where a check on `realpath`'s *normalized* output must
//! transfer to the *un-normalized* `$STEAMROOT` — starts with a precise
//! lexical normalization.

/// Splits a path into its component names, dropping empty components and
/// `.`. Keeps `..` (resolving it is [`normalize_lexical`]'s job).
pub fn split_components(path: &str) -> Vec<&str> {
    path.split('/')
        .filter(|c| !c.is_empty() && *c != ".")
        .collect()
}

/// Lexically normalizes a path: collapses repeated slashes, removes `.`,
/// and resolves `..` against preceding components. Absolute inputs yield
/// absolute outputs; `..` at the root stays at the root (POSIX). For
/// relative paths, leading `..` components are preserved.
///
/// This is a *lexical* operation — it does not consult any file system
/// and therefore, like `realpath -m`'s lexical mode, may differ from
/// kernel resolution in the presence of symlinks. The symbolic engine
/// treats symlinks as out of scope (see DESIGN.md).
///
/// # Examples
///
/// ```
/// use shoal_symfs::normalize_lexical;
/// assert_eq!(normalize_lexical("/a//b/./c/"), "/a/b/c");
/// assert_eq!(normalize_lexical("/a/b/../c"), "/a/c");
/// assert_eq!(normalize_lexical("/.."), "/");
/// assert_eq!(normalize_lexical("a/../../b"), "../b");
/// assert_eq!(normalize_lexical(""), ".");
/// ```
pub fn normalize_lexical(path: &str) -> String {
    let absolute = path.starts_with('/');
    let mut stack: Vec<&str> = Vec::new();
    for comp in split_components(path) {
        if comp == ".." {
            if stack.last().is_some_and(|c| *c != "..") {
                stack.pop();
            } else if !absolute {
                // Leading `..` is preserved in relative paths.
                stack.push("..");
            }
            // In absolute paths, `/..` is `/`: drop it.
        } else {
            stack.push(comp);
        }
    }
    if absolute {
        let mut out = String::from("/");
        out.push_str(&stack.join("/"));
        if out.len() > 1 && out.ends_with('/') {
            out.pop();
        }
        out
    } else if stack.is_empty() {
        ".".to_string()
    } else {
        stack.join("/")
    }
}

/// Joins `rel` onto `base` with shell `cd` semantics: absolute `rel`
/// replaces `base`; otherwise the result is `base/rel`, normalized.
///
/// # Examples
///
/// ```
/// use shoal_symfs::join;
/// assert_eq!(join("/home/user", "docs"), "/home/user/docs");
/// assert_eq!(join("/home/user", "/etc"), "/etc");
/// assert_eq!(join("/home/user", ".."), "/home");
/// ```
pub fn join(base: &str, rel: &str) -> String {
    if rel.starts_with('/') {
        normalize_lexical(rel)
    } else if rel.is_empty() {
        normalize_lexical(base)
    } else {
        normalize_lexical(&format!("{base}/{rel}"))
    }
}

/// The parent directory of a normalized absolute path (`/` is its own
/// parent). Returns `None` for relative paths.
pub fn parent(path: &str) -> Option<String> {
    if !path.starts_with('/') {
        return None;
    }
    let norm = normalize_lexical(path);
    if norm == "/" {
        return Some("/".to_string());
    }
    match norm.rfind('/') {
        Some(0) => Some("/".to_string()),
        Some(i) => Some(norm[..i].to_string()),
        None => None,
    }
}

/// Is `maybe_ancestor` an ancestor of (or equal to) `path`? Both must be
/// normalized absolute paths.
pub fn is_ancestor_or_equal(maybe_ancestor: &str, path: &str) -> bool {
    if maybe_ancestor == "/" {
        return path.starts_with('/');
    }
    path == maybe_ancestor
        || (path.starts_with(maybe_ancestor)
            && path.as_bytes().get(maybe_ancestor.len()) == Some(&b'/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basic() {
        assert_eq!(normalize_lexical("/"), "/");
        assert_eq!(normalize_lexical("//"), "/");
        assert_eq!(normalize_lexical("/a/b"), "/a/b");
        assert_eq!(normalize_lexical("/a/b/"), "/a/b");
        assert_eq!(normalize_lexical("a/b"), "a/b");
        assert_eq!(normalize_lexical("./a"), "a");
        assert_eq!(normalize_lexical("."), ".");
        assert_eq!(normalize_lexical(""), ".");
    }

    #[test]
    fn normalize_dotdot() {
        assert_eq!(normalize_lexical("/a/../b"), "/b");
        assert_eq!(normalize_lexical("/a/b/../../c"), "/c");
        assert_eq!(normalize_lexical("/../a"), "/a");
        assert_eq!(normalize_lexical("/a/../../.."), "/");
        assert_eq!(normalize_lexical("a/.."), ".");
        assert_eq!(normalize_lexical("../a"), "../a");
        assert_eq!(normalize_lexical("../../a/.."), "../..");
    }

    #[test]
    fn join_semantics() {
        assert_eq!(join("/", "a"), "/a");
        assert_eq!(join("/a", ""), "/a");
        assert_eq!(join("/a/b", "../c"), "/a/c");
        assert_eq!(join("/a", "/x/y"), "/x/y");
        assert_eq!(
            join("/home/jcarb/.steam", "upd.sh"),
            "/home/jcarb/.steam/upd.sh"
        );
    }

    #[test]
    fn parent_of() {
        assert_eq!(parent("/a/b/c").as_deref(), Some("/a/b"));
        assert_eq!(parent("/a").as_deref(), Some("/"));
        assert_eq!(parent("/").as_deref(), Some("/"));
        assert_eq!(parent("rel/a"), None);
    }

    #[test]
    fn ancestry() {
        assert!(is_ancestor_or_equal("/", "/anything"));
        assert!(is_ancestor_or_equal("/a", "/a/b/c"));
        assert!(is_ancestor_or_equal("/a/b", "/a/b"));
        assert!(!is_ancestor_or_equal("/a/b", "/a/bc"));
        assert!(!is_ancestor_or_equal("/a/b", "/a"));
    }

    #[test]
    fn steam_bug_expansion_cases() {
        // `${0%/*}` on `~/.steam/upd.sh` gives the parent; `cd` there
        // succeeds and `$PWD` is the parent directory.
        assert_eq!(
            join("/anywhere", "/home/jcarb/.steam"),
            "/home/jcarb/.steam"
        );
        // `${0%/*}` on `upd.sh` (no slash) leaves `upd.sh`; `cd upd.sh`
        // fails; STEAMROOT ends up empty — the path algebra is only
        // reached on the success branch.
        assert_eq!(join("/home/jcarb", "upd.sh"), "/home/jcarb/upd.sh");
    }
}
