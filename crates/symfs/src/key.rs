//! File-system location identities.
//!
//! An [`FsKey`] names a location in a way that survives the shell's many
//! spellings of the same path. A key is a *base* — either the file-system
//! root (for fully resolved paths) or a symbolic anchor ("wherever the
//! string in `$1` resolves to") — plus a sequence of known component
//! names. Two accesses with the same key definitely touch the same node;
//! accesses with different symbolic bases may or may not alias (the
//! engine treats them as independent, a documented under-approximation).

use crate::path::{normalize_lexical, split_components};
use std::fmt;

/// Identifier of a symbolic path base (allocated by the analysis engine,
/// one per unknown path-valued expression).
pub type SymBase = u32;

/// The anchor of an [`FsKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Base {
    /// The file-system root: the key's components are an absolute path.
    Root,
    /// A symbolic location: "wherever symbolic path #n resolves".
    Sym(SymBase),
}

/// The identity of a file-system location.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FsKey {
    /// The anchor.
    pub base: Base,
    /// Component names below the anchor (normalized: no `.`, `..`, or
    /// empty components).
    pub comps: Vec<String>,
}

impl FsKey {
    /// The root key (`/`).
    pub fn root() -> FsKey {
        FsKey {
            base: Base::Root,
            comps: Vec::new(),
        }
    }

    /// A key for a concrete absolute path (normalized lexically).
    /// Returns `None` for relative paths.
    pub fn absolute(path: &str) -> Option<FsKey> {
        if !path.starts_with('/') {
            return None;
        }
        let norm = normalize_lexical(path);
        Some(FsKey {
            base: Base::Root,
            comps: split_components(&norm)
                .into_iter()
                .map(str::to_string)
                .collect(),
        })
    }

    /// A key anchored at symbolic base `sym` with no suffix.
    pub fn symbolic(sym: SymBase) -> FsKey {
        FsKey {
            base: Base::Sym(sym),
            comps: Vec::new(),
        }
    }

    /// A key anchored at symbolic base `sym` with a relative suffix.
    /// Suffixes containing `..` cannot be anchored (they may escape the
    /// base) and yield `None`.
    pub fn symbolic_with(sym: SymBase, rel: &str) -> Option<FsKey> {
        let comps = split_components(rel);
        if comps.contains(&"..") {
            return None;
        }
        Some(FsKey {
            base: Base::Sym(sym),
            comps: comps.into_iter().map(str::to_string).collect(),
        })
    }

    /// The key for `self`'s child named `name`.
    pub fn child(&self, name: &str) -> FsKey {
        let mut comps = self.comps.clone();
        comps.push(name.to_string());
        FsKey {
            base: self.base,
            comps,
        }
    }

    /// The parent key, unless `self` is a bare anchor.
    pub fn parent(&self) -> Option<FsKey> {
        if self.comps.is_empty() {
            match self.base {
                Base::Root => Some(FsKey::root()),
                Base::Sym(_) => None,
            }
        } else {
            let mut comps = self.comps.clone();
            comps.pop();
            Some(FsKey {
                base: self.base,
                comps,
            })
        }
    }

    /// Is `self` an ancestor of (or equal to) `other`? Keys with
    /// different bases never relate.
    pub fn is_ancestor_or_equal(&self, other: &FsKey) -> bool {
        self.base == other.base
            && self.comps.len() <= other.comps.len()
            && self
                .comps
                .iter()
                .zip(other.comps.iter())
                .all(|(a, b)| a == b)
    }

    /// Is this the file-system root itself?
    pub fn is_root(&self) -> bool {
        self.base == Base::Root && self.comps.is_empty()
    }

    /// All proper ancestors, nearest first (excluding the bare anchor for
    /// symbolic keys — we know nothing above a symbolic base).
    pub fn proper_ancestors(&self) -> Vec<FsKey> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        while let Some(p) = cur.parent() {
            if p == cur {
                break;
            }
            out.push(p.clone());
            cur = p;
        }
        out
    }
}

impl fmt::Display for FsKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            Base::Root => {
                if self.comps.is_empty() {
                    write!(f, "/")
                } else {
                    write!(f, "/{}", self.comps.join("/"))
                }
            }
            Base::Sym(n) => {
                write!(f, "<sym{n}>")?;
                for c in &self.comps {
                    write!(f, "/{c}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_keys_normalize() {
        let k = FsKey::absolute("/a//b/./c/../d").unwrap();
        assert_eq!(k.to_string(), "/a/b/d");
        assert_eq!(FsKey::absolute("relative"), None);
        assert!(FsKey::absolute("/").unwrap().is_root());
    }

    #[test]
    fn symbolic_suffixes() {
        let k = FsKey::symbolic_with(3, "config/app.toml").unwrap();
        assert_eq!(k.to_string(), "<sym3>/config/app.toml");
        assert_eq!(FsKey::symbolic_with(3, "../escape"), None);
        assert_eq!(FsKey::symbolic_with(3, "./x").unwrap().comps, vec!["x"]);
    }

    #[test]
    fn parents_and_ancestors() {
        let k = FsKey::absolute("/a/b/c").unwrap();
        assert_eq!(k.parent().unwrap().to_string(), "/a/b");
        assert_eq!(FsKey::root().parent().unwrap(), FsKey::root());
        assert_eq!(FsKey::symbolic(1).parent(), None);
        let ancestors = k.proper_ancestors();
        assert_eq!(ancestors.len(), 3);
        assert_eq!(ancestors[0].to_string(), "/a/b");
        assert_eq!(ancestors[2].to_string(), "/");
    }

    #[test]
    fn ancestry_relation() {
        let a = FsKey::absolute("/a").unwrap();
        let abc = FsKey::absolute("/a/b/c").unwrap();
        assert!(a.is_ancestor_or_equal(&abc));
        assert!(abc.is_ancestor_or_equal(&abc));
        assert!(!abc.is_ancestor_or_equal(&a));
        assert!(FsKey::root().is_ancestor_or_equal(&abc));
        // Different bases never relate.
        assert!(!FsKey::symbolic(1).is_ancestor_or_equal(&abc));
        assert!(!FsKey::symbolic(1).is_ancestor_or_equal(&FsKey::symbolic(2)));
        let s1c = FsKey::symbolic(1).child("c");
        assert!(FsKey::symbolic(1).is_ancestor_or_equal(&s1c));
    }
}
