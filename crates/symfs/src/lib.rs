//! `shoal-symfs`: a symbolic model of the file system.
//!
//! §4 of the paper ("File system effects") calls for "track\\[ing\\]
//! constraints on the nodes in the file system to which individual paths
//! resolve; when competing constraints are inconsistent, the system
//! determines that the script contains a bug arising from command
//! composition." This crate is that tracker:
//!
//! * [`path`] — concrete path algebra: lexical normalization, joining,
//!   `realpath`-style canonicalization, the machinery behind "the identity
//!   of filesystem locations referrable to by arbitrarily many
//!   path-strings";
//! * [`key`] — [`key::FsKey`]: the identity of a location, anchored either
//!   at the root (fully resolved) or at a *symbolic base* (e.g. "wherever
//!   `$1` points") plus a known relative suffix (e.g. `config`);
//! * [`state`] — [`state::SymFs`]: a symbolic heap mapping keys to node
//!   states (file / directory / absent), enforcing the tree axioms
//!   (children imply directory parents; absence propagates downward),
//!   distinguishing *assumptions about the initial world* from *effects
//!   the script performed*, and reporting contradictions — the signal
//!   behind the paper's `rm -r $1; cat $1/config` always-fails example.
//!
//! # Examples
//!
//! ```
//! use shoal_symfs::key::FsKey;
//! use shoal_symfs::state::{NodeState, Require, SymFs};
//!
//! // The paper's §4 snippet: `rm -r $1` then `cat $1/config`.
//! let mut fs = SymFs::new();
//! let dollar1 = FsKey::symbolic(0);
//! // `rm -r $1` succeeded: $1 existed, and is now gone.
//! assert!(matches!(fs.require(&dollar1, NodeState::Dir), Require::Assumed));
//! fs.delete_tree(&dollar1);
//! // `cat $1/config` needs $1/config to exist — contradiction.
//! let config = dollar1.child("config");
//! assert!(matches!(fs.require(&config, NodeState::File), Require::Contradiction(_)));
//! ```

pub mod key;
pub mod path;
pub mod state;

pub use key::{Base, FsKey};
pub use path::{is_ancestor_or_equal, join, normalize_lexical, parent, split_components};
pub use state::{NodeState, Require, SymFs};
