//! The symbolic file-system heap.
//!
//! [`SymFs`] tracks what the analysis knows about every file-system
//! location a script touches. Knowledge comes from two places:
//!
//! * **assumptions** about the initial world, recorded when a command's
//!   precondition could be satisfied ("`rm -r $1` succeeded, so `$1` must
//!   have existed") — these are constraints on the environment under
//!   which the current execution path is feasible;
//! * **effects**, the script's own changes ("after `rm -r $1`, `$1` is
//!   gone").
//!
//! A [`Require::Contradiction`] means the current path *cannot* satisfy a
//! command's precondition no matter what the initial world looked like —
//! the command always fails on this path. That is exactly the paper's §4
//! verdict for `rm -r $1; cat $1/config`.
//!
//! The heap enforces the tree axioms:
//!
//! 1. if a node exists, every ancestor exists and is a directory;
//! 2. if a node is absent, every descendant is absent;
//! 3. a file has no children.

use crate::key::FsKey;
use shoal_obs::{CowList, Pmap};
use std::fmt;

/// What is known about one location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// A regular file (or at least: not a directory).
    File,
    /// A directory.
    Dir,
    /// Exists, kind unknown (e.g. `test -e` succeeded).
    Exists,
    /// Does not exist.
    Absent,
}

impl NodeState {
    /// Can a node simultaneously satisfy both states?
    pub fn compatible(self, other: NodeState) -> bool {
        use NodeState::*;
        match (self, other) {
            (Absent, Absent) => true,
            (Absent, _) | (_, Absent) => false,
            (File, Dir) | (Dir, File) => false,
            _ => true,
        }
    }

    /// The more specific of two compatible states.
    pub fn refine(self, other: NodeState) -> NodeState {
        use NodeState::*;
        match (self, other) {
            (Exists, s) | (s, Exists) => s,
            (s, _) => s,
        }
    }

    /// True when the node exists in this state.
    pub fn exists(self) -> bool {
        !matches!(self, NodeState::Absent)
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeState::File => "a file",
            NodeState::Dir => "a directory",
            NodeState::Exists => "present",
            NodeState::Absent => "absent",
        };
        write!(f, "{s}")
    }
}

/// Result of requiring a state at a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Require {
    /// Already known to hold.
    Satisfied,
    /// Unknown before; now assumed about the initial world.
    Assumed,
    /// Impossible on this path: the explanation names the conflicting
    /// knowledge.
    Contradiction(String),
}

impl Require {
    /// True unless the requirement is contradictory.
    pub fn ok(&self) -> bool {
        !matches!(self, Require::Contradiction(_))
    }
}

/// The symbolic heap. Cloneable: the engine forks it per execution path.
///
/// Both fields are structurally shared ([`Pmap`], [`CowList`]), so a
/// fork is O(1) and post-fork writes path-copy O(log n) nodes instead of
/// duplicating the whole heap — the heap grows with script length, and
/// eager clones made long straight-line scripts quadratic.
#[derive(Debug, Clone, Default)]
pub struct SymFs {
    /// Current knowledge per location (key-sorted for deterministic
    /// output).
    entries: Pmap<FsKey, NodeState>,
    /// Assumptions made about the *initial* world, in order.
    assumptions: CowList<(FsKey, NodeState)>,
}

impl SymFs {
    /// An empty heap: nothing known beyond the existence of `/`.
    pub fn new() -> SymFs {
        let mut fs = SymFs::default();
        fs.entries.insert(FsKey::root(), NodeState::Dir);
        fs
    }

    /// Direct lookup of what is currently known about `key`, including
    /// knowledge derived from the tree axioms.
    pub fn lookup(&self, key: &FsKey) -> Option<NodeState> {
        if let Some(&s) = self.entries.get(key) {
            return Some(s);
        }
        // Axiom 2/3: an absent or file-typed ancestor forces absence.
        for anc in key.proper_ancestors() {
            match self.entries.get(&anc) {
                Some(NodeState::Absent) | Some(NodeState::File) => return Some(NodeState::Absent),
                _ => {}
            }
        }
        // Axiom 1: a known child forces this node to be a directory.
        let has_known_child = self
            .entries
            .iter_from(key)
            .take_while(|(k, _)| key.is_ancestor_or_equal(k))
            .any(|(k, s)| k != key && s.exists());
        if has_known_child {
            return Some(NodeState::Dir);
        }
        None
    }

    /// Requires `state` at `key`. If unknown, assumes it (constraining
    /// the initial world); if known-compatible, refines; if impossible,
    /// reports the contradiction.
    pub fn require(&mut self, key: &FsKey, state: NodeState) -> Require {
        match self.lookup(key) {
            Some(known) if known.compatible(state) => {
                self.entries.insert(key.clone(), known.refine(state));
                if state.exists() {
                    // Existence also pins the ancestors as directories.
                    if let Require::Contradiction(c) = self.require_ancestors(key) {
                        return Require::Contradiction(c);
                    }
                }
                Require::Satisfied
            }
            Some(known) => Require::Contradiction(format!(
                "{key} is {known} here, but the command needs it to be {state}"
            )),
            None => {
                if state.exists() {
                    if let Require::Contradiction(c) = self.require_ancestors(key) {
                        return Require::Contradiction(c);
                    }
                }
                self.entries.insert(key.clone(), state);
                self.assumptions.push((key.clone(), state));
                Require::Assumed
            }
        }
    }

    /// Ancestors of an existing node must be directories.
    fn require_ancestors(&mut self, key: &FsKey) -> Require {
        for anc in key.proper_ancestors() {
            match self.lookup(&anc) {
                Some(NodeState::Dir) => {}
                Some(other) if other.compatible(NodeState::Dir) => {
                    self.entries.insert(anc, NodeState::Dir);
                }
                Some(other) => {
                    return Require::Contradiction(format!(
                        "{key} needs {anc} to be a directory, but it is {other} here"
                    ))
                }
                None => {
                    self.entries.insert(anc.clone(), NodeState::Dir);
                    self.assumptions.push((anc, NodeState::Dir));
                }
            }
        }
        Require::Satisfied
    }

    /// Records an effect: the node (and implicitly its subtree) now has
    /// `state`, regardless of what it was.
    pub fn set(&mut self, key: &FsKey, state: NodeState) {
        match state {
            NodeState::Absent => self.delete_tree(key),
            NodeState::File => {
                let _ = self.create_file(key);
            }
            _ => {
                self.entries.insert(key.clone(), state);
            }
        }
    }

    /// Keys in `self`'s subtree (keys with prefix `key` form a contiguous
    /// run in key order, the same fact `lookup` exploits).
    fn subtree_keys(&self, key: &FsKey, include_self: bool) -> Vec<FsKey> {
        self.entries
            .iter_from(key)
            .take_while(|(k, _)| key.is_ancestor_or_equal(k))
            .filter(|(k, _)| include_self || *k != key)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Records the effect of `rm -r`: the node and its entire subtree are
    /// gone.
    pub fn delete_tree(&mut self, key: &FsKey) {
        for k in self.subtree_keys(key, true) {
            self.entries.remove(&k);
        }
        self.entries.insert(key.clone(), NodeState::Absent);
    }

    /// Records the effect of `rm dir/*`: the node's *children* are gone
    /// but the node itself remains.
    pub fn delete_children(&mut self, key: &FsKey) {
        for k in self.subtree_keys(key, false) {
            self.entries.remove(&k);
        }
    }

    /// Creates a file (as `touch` / `>` do), together with its directory
    /// chain. Any previously-known descendants are erased: a file has no
    /// children (axiom 3), so whatever was recorded beneath this key is
    /// gone in the new state.
    pub fn create_file(&mut self, key: &FsKey) -> Require {
        let r = self.require_ancestors(key);
        if r.ok() {
            for k in self.subtree_keys(key, false) {
                self.entries.remove(&k);
            }
            self.entries.insert(key.clone(), NodeState::File);
        }
        r
    }

    /// Creates a directory (as `mkdir -p` does).
    pub fn create_dir(&mut self, key: &FsKey) -> Require {
        let r = self.require_ancestors(key);
        if r.ok() {
            self.entries.insert(key.clone(), NodeState::Dir);
        }
        r
    }

    /// The assumptions accumulated about the initial world, in order.
    pub fn assumptions(&self) -> impl Iterator<Item = &(FsKey, NodeState)> {
        self.assumptions.iter()
    }

    /// Is the knowledge that currently *determines* `key`'s state an
    /// assumption about the initial world (as opposed to an effect the
    /// script performed)? Used to separate "fails because the script
    /// deleted it" (report-worthy) from "fails on the path where we
    /// assumed it never existed" (ordinary).
    pub fn determined_by_assumption(&self, key: &FsKey) -> bool {
        if let Some(&s) = self.entries.get(key) {
            return self.assumptions.iter().any(|(k, st)| k == key && *st == s);
        }
        // Derived knowledge: find the ancestor that forces the state.
        for anc in key.proper_ancestors() {
            if let Some(&s) = self.entries.get(&anc) {
                if matches!(s, NodeState::Absent | NodeState::File) {
                    return self.assumptions.iter().any(|(k, st)| *k == anc && *st == s);
                }
            }
        }
        false
    }

    /// Every location with known state, in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&FsKey, NodeState)> {
        self.entries.iter().map(|(k, &s)| (k, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: &str) -> FsKey {
        FsKey::absolute(p).expect("absolute")
    }

    #[test]
    fn require_then_satisfied() {
        let mut fs = SymFs::new();
        assert_eq!(
            fs.require(&key("/etc/passwd"), NodeState::File),
            Require::Assumed
        );
        assert_eq!(
            fs.require(&key("/etc/passwd"), NodeState::File),
            Require::Satisfied
        );
        // The ancestor was forced to a directory.
        assert_eq!(fs.lookup(&key("/etc")), Some(NodeState::Dir));
    }

    #[test]
    fn file_dir_conflict() {
        let mut fs = SymFs::new();
        fs.require(&key("/data"), NodeState::File);
        let r = fs.require(&key("/data"), NodeState::Dir);
        assert!(!r.ok());
    }

    #[test]
    fn exists_refines() {
        let mut fs = SymFs::new();
        fs.require(&key("/x"), NodeState::Exists);
        assert_eq!(fs.require(&key("/x"), NodeState::File), Require::Satisfied);
        assert_eq!(fs.lookup(&key("/x")), Some(NodeState::File));
    }

    #[test]
    fn absent_propagates_down() {
        let mut fs = SymFs::new();
        fs.require(&key("/gone"), NodeState::Absent);
        assert_eq!(fs.lookup(&key("/gone/child/deep")), Some(NodeState::Absent));
        let r = fs.require(&key("/gone/child"), NodeState::File);
        assert!(!r.ok());
    }

    #[test]
    fn file_cannot_have_children() {
        let mut fs = SymFs::new();
        fs.require(&key("/notes.txt"), NodeState::File);
        let r = fs.require(&key("/notes.txt/inner"), NodeState::File);
        assert!(!r.ok(), "a file has no children");
    }

    #[test]
    fn child_implies_dir_parent() {
        let mut fs = SymFs::new();
        fs.require(&key("/a/b"), NodeState::File);
        // `/a` must be a directory: requiring it to be a file conflicts.
        let r = fs.require(&key("/a"), NodeState::File);
        assert!(!r.ok());
    }

    #[test]
    fn rm_then_cat_contradiction() {
        // The paper's §4 composition bug, concrete-path version.
        let mut fs = SymFs::new();
        assert!(fs.require(&key("/work"), NodeState::Exists).ok());
        fs.delete_tree(&key("/work"));
        let r = fs.require(&key("/work/config"), NodeState::File);
        assert!(
            !r.ok(),
            "cat /work/config must always fail after rm -r /work"
        );
    }

    #[test]
    fn rm_then_cat_symbolic() {
        let mut fs = SymFs::new();
        let base = FsKey::symbolic(0);
        assert!(fs.require(&base, NodeState::Exists).ok());
        fs.delete_tree(&base);
        let r = fs.require(&base.child("config"), NodeState::File);
        assert!(!r.ok());
    }

    #[test]
    fn mkdir_then_touch_ok() {
        let mut fs = SymFs::new();
        assert!(fs.create_dir(&key("/build")).ok());
        assert!(fs.create_file(&key("/build/out.o")).ok());
        assert_eq!(fs.lookup(&key("/build")), Some(NodeState::Dir));
        assert_eq!(fs.lookup(&key("/build/out.o")), Some(NodeState::File));
    }

    #[test]
    fn delete_children_keeps_node() {
        let mut fs = SymFs::new();
        fs.create_dir(&key("/steam")).ok();
        fs.create_file(&key("/steam/bin")).ok();
        fs.delete_children(&key("/steam"));
        assert_eq!(fs.lookup(&key("/steam")), Some(NodeState::Dir));
        assert_eq!(fs.lookup(&key("/steam/bin")), None);
    }

    #[test]
    fn recreate_after_delete() {
        // Deleting then recreating is consistent: effects are ordered.
        let mut fs = SymFs::new();
        fs.require(&key("/tmp/f"), NodeState::File);
        fs.delete_tree(&key("/tmp/f"));
        assert!(fs.create_file(&key("/tmp/f")).ok());
        assert_eq!(fs.lookup(&key("/tmp/f")), Some(NodeState::File));
    }

    #[test]
    fn assumptions_recorded_in_order() {
        let mut fs = SymFs::new();
        fs.require(&key("/a/b"), NodeState::File);
        let keys: Vec<String> = fs.assumptions().map(|(k, _)| k.to_string()).collect();
        assert!(keys.contains(&"/a/b".to_string()));
        assert!(keys.contains(&"/a".to_string()));
    }

    #[test]
    fn different_sym_bases_do_not_alias() {
        let mut fs = SymFs::new();
        fs.require(&FsKey::symbolic(0), NodeState::File);
        // A different base can still be a directory.
        assert!(fs.require(&FsKey::symbolic(1), NodeState::Dir).ok());
    }
}
