//! Property-based tests for the symbolic file system (on the in-repo
//! seeded harness): the tree axioms hold under arbitrary operation
//! sequences, and lexical path normalization behaves like a normal form.

use shoal_obs::prop::{run_cases, Gen};
use shoal_symfs::key::FsKey;
use shoal_symfs::state::{NodeState, SymFs};
use shoal_symfs::{is_ancestor_or_equal, join, normalize_lexical};

/// Path components from a small alphabet (plus dot-dot and dot to
/// stress normalization).
fn component(g: &mut Gen) -> String {
    g.pick(&["a", "b", "c", "..", ".", ""]).to_string()
}

fn raw_path(g: &mut Gen) -> String {
    let abs = g.bool();
    let body = g.vec_of(0..6, component).join("/");
    if abs {
        format!("/{body}")
    } else {
        body
    }
}

/// One file-system operation.
#[derive(Debug, Clone)]
enum Op {
    RequireFile(String),
    RequireDir(String),
    RequireAbsent(String),
    CreateFile(String),
    CreateDir(String),
    DeleteTree(String),
    DeleteChildren(String),
}

fn abs_key_path(g: &mut Gen) -> String {
    let comps = g.vec_of(1..4, |g| *g.pick(&["a", "b", "c"]));
    format!("/{}", comps.join("/"))
}

fn op(g: &mut Gen) -> Op {
    let p = abs_key_path(g);
    match g.usize(0..7) {
        0 => Op::RequireFile(p),
        1 => Op::RequireDir(p),
        2 => Op::RequireAbsent(p),
        3 => Op::CreateFile(p),
        4 => Op::CreateDir(p),
        5 => Op::DeleteTree(p),
        _ => Op::DeleteChildren(p),
    }
}

fn apply(fs: &mut SymFs, op: &Op) {
    let key = |p: &str| FsKey::absolute(p).expect("absolute");
    match op {
        Op::RequireFile(p) => {
            let _ = fs.require(&key(p), NodeState::File);
        }
        Op::RequireDir(p) => {
            let _ = fs.require(&key(p), NodeState::Dir);
        }
        Op::RequireAbsent(p) => {
            let _ = fs.require(&key(p), NodeState::Absent);
        }
        Op::CreateFile(p) => {
            let _ = fs.create_file(&key(p));
        }
        Op::CreateDir(p) => {
            let _ = fs.create_dir(&key(p));
        }
        Op::DeleteTree(p) => fs.delete_tree(&key(p)),
        Op::DeleteChildren(p) => fs.delete_children(&key(p)),
    }
}

#[test]
fn normalization_is_idempotent() {
    run_cases("normalization_is_idempotent", 256, |g| {
        let p = raw_path(g);
        let once = normalize_lexical(&p);
        let twice = normalize_lexical(&once);
        assert_eq!(once, twice);
    });
}

#[test]
fn normalized_paths_have_no_dots_or_doubles() {
    run_cases("normalized_paths_have_no_dots_or_doubles", 256, |g| {
        let p = raw_path(g);
        let n = normalize_lexical(&p);
        assert!(!n.contains("//"), "{n}");
        // `.` is the normal form of the empty relative path; no other
        // `.` components survive.
        if n != "." {
            assert!(!n.split('/').any(|c| c == "."), "{n}");
        }
        if n.starts_with('/') {
            assert!(!n.split('/').any(|c| c == ".."), "absolute {n} kept ..");
        }
        if n.len() > 1 {
            assert!(!n.ends_with('/'), "{n}");
        }
    });
}

#[test]
fn join_produces_normalized() {
    run_cases("join_produces_normalized", 256, |g| {
        let b = raw_path(g);
        let r = raw_path(g);
        // Join against an absolute base always yields a normalized
        // absolute path.
        let base = if b.starts_with('/') { b } else { format!("/{b}") };
        let base = normalize_lexical(&base);
        let joined = join(&base, &r);
        assert_eq!(joined.clone(), normalize_lexical(&joined));
        assert!(joined.starts_with('/'));
    });
}

#[test]
fn ancestor_relation_is_a_partial_order() {
    run_cases("ancestor_relation_is_a_partial_order", 256, |g| {
        let a = abs_key_path(g);
        let b = abs_key_path(g);
        let na = normalize_lexical(&a);
        let nb = normalize_lexical(&b);
        assert!(is_ancestor_or_equal(&na, &na));
        if is_ancestor_or_equal(&na, &nb) && is_ancestor_or_equal(&nb, &na) {
            assert_eq!(na, nb);
        }
    });
}

#[test]
fn tree_axioms_hold_after_any_ops() {
    run_cases("tree_axioms_hold_after_any_ops", 256, |g| {
        let ops = g.vec_of(0..24, op);
        let mut fs = SymFs::new();
        for o in &ops {
            apply(&mut fs, o);
        }
        // Axiom: an existing node's ancestors are all directories.
        let entries: Vec<(FsKey, NodeState)> = fs.entries().map(|(k, s)| (k.clone(), s)).collect();
        for (k, s) in &entries {
            if s.exists() {
                for anc in k.proper_ancestors() {
                    let anc_state = fs.lookup(&anc);
                    assert!(
                        anc_state == Some(NodeState::Dir),
                        "{k} is {s} but ancestor {anc} is {anc_state:?} (ops: {ops:?})"
                    );
                }
            }
        }
        // Axiom: nothing exists under an absent or file node.
        for (k, s) in &entries {
            if matches!(s, NodeState::Absent | NodeState::File) {
                for (other, os) in &entries {
                    if other != k && k.is_ancestor_or_equal(other) {
                        assert!(
                            !os.exists(),
                            "{other} is {os} under {k} which is {s} (ops: {ops:?})"
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn require_is_idempotent() {
    run_cases("require_is_idempotent", 256, |g| {
        let ops = g.vec_of(0..12, op);
        let p = abs_key_path(g);
        let mut fs = SymFs::new();
        for o in &ops {
            apply(&mut fs, o);
        }
        let key = FsKey::absolute(&p).unwrap();
        let mut fs2 = fs.clone();
        let first = fs2.require(&key, NodeState::File).ok();
        let state_after_first = fs2.lookup(&key);
        let second = fs2.require(&key, NodeState::File).ok();
        assert_eq!(first, second, "second require changed feasibility");
        assert_eq!(state_after_first, fs2.lookup(&key));
    });
}

#[test]
fn delete_tree_erases_subtree() {
    run_cases("delete_tree_erases_subtree", 256, |g| {
        let ops = g.vec_of(0..12, op);
        let p = abs_key_path(g);
        let mut fs = SymFs::new();
        for o in &ops {
            apply(&mut fs, o);
        }
        let key = FsKey::absolute(&p).unwrap();
        fs.delete_tree(&key);
        assert_eq!(fs.lookup(&key), Some(NodeState::Absent));
        let child = key.child("probe");
        assert_eq!(fs.lookup(&child), Some(NodeState::Absent));
    });
}
