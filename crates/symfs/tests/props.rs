//! Property-based tests for the symbolic file system: the tree axioms
//! hold under arbitrary operation sequences, and lexical path
//! normalization behaves like a normal form.

use proptest::prelude::*;
use shoal_symfs::key::FsKey;
use shoal_symfs::state::{NodeState, SymFs};
use shoal_symfs::{is_ancestor_or_equal, join, normalize_lexical};

/// Strategy: path components from a small alphabet (plus dot-dot and
/// dot to stress normalization).
fn component() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("..".to_string()),
        Just(".".to_string()),
        Just("".to_string()),
    ]
}

fn raw_path() -> impl Strategy<Value = String> {
    (prop::bool::ANY, prop::collection::vec(component(), 0..6)).prop_map(|(abs, comps)| {
        let body = comps.join("/");
        if abs {
            format!("/{body}")
        } else {
            body
        }
    })
}

/// Strategy: one file-system operation.
#[derive(Debug, Clone)]
enum Op {
    RequireFile(String),
    RequireDir(String),
    RequireAbsent(String),
    CreateFile(String),
    CreateDir(String),
    DeleteTree(String),
    DeleteChildren(String),
}

fn abs_key_path() -> impl Strategy<Value = String> {
    prop::collection::vec(prop_oneof![Just("a"), Just("b"), Just("c")], 1..4)
        .prop_map(|cs| format!("/{}", cs.join("/")))
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        abs_key_path().prop_map(Op::RequireFile),
        abs_key_path().prop_map(Op::RequireDir),
        abs_key_path().prop_map(Op::RequireAbsent),
        abs_key_path().prop_map(Op::CreateFile),
        abs_key_path().prop_map(Op::CreateDir),
        abs_key_path().prop_map(Op::DeleteTree),
        abs_key_path().prop_map(Op::DeleteChildren),
    ]
}

fn apply(fs: &mut SymFs, op: &Op) {
    let key = |p: &str| FsKey::absolute(p).expect("absolute");
    match op {
        Op::RequireFile(p) => {
            let _ = fs.require(&key(p), NodeState::File);
        }
        Op::RequireDir(p) => {
            let _ = fs.require(&key(p), NodeState::Dir);
        }
        Op::RequireAbsent(p) => {
            let _ = fs.require(&key(p), NodeState::Absent);
        }
        Op::CreateFile(p) => {
            let _ = fs.create_file(&key(p));
        }
        Op::CreateDir(p) => {
            let _ = fs.create_dir(&key(p));
        }
        Op::DeleteTree(p) => fs.delete_tree(&key(p)),
        Op::DeleteChildren(p) => fs.delete_children(&key(p)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn normalization_is_idempotent(p in raw_path()) {
        let once = normalize_lexical(&p);
        let twice = normalize_lexical(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn normalized_paths_have_no_dots_or_doubles(p in raw_path()) {
        let n = normalize_lexical(&p);
        prop_assert!(!n.contains("//"), "{n}");
        // `.` is the normal form of the empty relative path; no other
        // `.` components survive.
        if n != "." {
            prop_assert!(!n.split('/').any(|c| c == "."), "{n}");
        }
        if n.starts_with('/') {
            prop_assert!(!n.split('/').any(|c| c == ".."), "absolute {n} kept ..");
        }
        if n.len() > 1 {
            prop_assert!(!n.ends_with('/'), "{n}");
        }
    }

    #[test]
    fn join_produces_normalized(b in raw_path(), r in raw_path()) {
        // Join against an absolute base always yields a normalized
        // absolute path.
        let base = if b.starts_with('/') { b } else { format!("/{b}") };
        let base = normalize_lexical(&base);
        let joined = join(&base, &r);
        prop_assert_eq!(joined.clone(), normalize_lexical(&joined));
        prop_assert!(joined.starts_with('/'));
    }

    #[test]
    fn ancestor_relation_is_a_partial_order(a in abs_key_path(), b in abs_key_path()) {
        let na = normalize_lexical(&a);
        let nb = normalize_lexical(&b);
        prop_assert!(is_ancestor_or_equal(&na, &na));
        if is_ancestor_or_equal(&na, &nb) && is_ancestor_or_equal(&nb, &na) {
            prop_assert_eq!(na, nb);
        }
    }

    #[test]
    fn tree_axioms_hold_after_any_ops(ops in prop::collection::vec(op(), 0..24)) {
        let mut fs = SymFs::new();
        for o in &ops {
            apply(&mut fs, o);
        }
        // Axiom: an existing node's ancestors are all directories.
        let entries: Vec<(FsKey, NodeState)> =
            fs.entries().map(|(k, s)| (k.clone(), s)).collect();
        for (k, s) in &entries {
            if s.exists() {
                for anc in k.proper_ancestors() {
                    let anc_state = fs.lookup(&anc);
                    prop_assert!(
                        anc_state == Some(NodeState::Dir),
                        "{k} is {s} but ancestor {anc} is {anc_state:?} (ops: {ops:?})"
                    );
                }
            }
        }
        // Axiom: nothing exists under an absent or file node.
        for (k, s) in &entries {
            if matches!(s, NodeState::Absent | NodeState::File) {
                for (other, os) in &entries {
                    if other != k && k.is_ancestor_or_equal(other) {
                        prop_assert!(
                            !os.exists(),
                            "{other} is {os} under {k} which is {s} (ops: {ops:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn require_is_idempotent(ops in prop::collection::vec(op(), 0..12), p in abs_key_path()) {
        let mut fs = SymFs::new();
        for o in &ops {
            apply(&mut fs, o);
        }
        let key = FsKey::absolute(&p).unwrap();
        let mut fs2 = fs.clone();
        let first = fs2.require(&key, NodeState::File).ok();
        let state_after_first = fs2.lookup(&key);
        let second = fs2.require(&key, NodeState::File).ok();
        prop_assert_eq!(first, second, "second require changed feasibility");
        prop_assert_eq!(state_after_first, fs2.lookup(&key));
    }

    #[test]
    fn delete_tree_erases_subtree(ops in prop::collection::vec(op(), 0..12), p in abs_key_path()) {
        let mut fs = SymFs::new();
        for o in &ops {
            apply(&mut fs, o);
        }
        let key = FsKey::absolute(&p).unwrap();
        fs.delete_tree(&key);
        prop_assert_eq!(fs.lookup(&key), Some(NodeState::Absent));
        let child = key.child("probe");
        prop_assert_eq!(fs.lookup(&child), Some(NodeState::Absent));
    }
}
