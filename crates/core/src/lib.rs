//! `shoal-core`: the semantics-driven symbolic execution engine.
//!
//! This crate is the paper's primary contribution: an ahead-of-time
//! analyzer that "simulat\\[es\\] the actions of the shell interpreter,
//! symbolically describing the results of operations and transforming
//! sets of program states along the way" (§3). It glues the substrates
//! together:
//!
//! * shell syntax from `shoal-shparse`,
//! * regular constraints from `shoal-relang`,
//! * the symbolic file system from `shoal-symfs`,
//! * command Hoare specs from `shoal-spec`,
//! * stream types from `shoal-streamty`,
//!
//! and adds what only the engine can know: variable stores with
//! constrained symbolic strings, full POSIX parameter-expansion
//! semantics, working-directory tracking, success/failure forking with
//! constraint refinement and concrete pruning, and the checkers that
//! turn inconsistencies into diagnostics (dangerous deletions,
//! always-failing compositions, dead pipes, type mismatches, platform
//! dependence, read/write dependencies).
//!
//! # Examples
//!
//! ```
//! use shoal_core::analyze_source;
//!
//! // The paper's Fig. 1 — the Steam updater bug.
//! let report = analyze_source(r#"
//! STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
//! rm -fr "$STEAMROOT"/*
//! "#).unwrap();
//! assert!(report.diagnostics.iter().any(|d| d.code == shoal_core::DiagCode::DangerousDelete));
//! ```

pub mod analyze;
pub mod annotations;
pub mod audit;
pub mod builtins;
pub mod checkers;
pub mod coach;
pub mod diag;
pub mod engine;
pub mod expand;
pub mod glob;
pub mod incr;
pub mod provenance;
pub mod scan;
pub mod sniff;
pub mod stats;
pub mod value;
pub mod world;

pub use analyze::{
    analyze_script, analyze_source, analyze_source_resilient, analyze_source_with,
    AnalysisOptions, AnalysisReport,
};
pub use annotations::{parse_annotations, AnnotationError, Annotations};
pub use audit::{AuditRecorder, AuditReport, MissingSpec};
pub use diag::{DiagCode, Diagnostic, Severity};
pub use incr::{analyze_source_incremental, IncrSession, IncrStats};
pub use provenance::{
    Provenance, TrailEntry, TrailKind, WorldId, WorldNode, WorldOutcome, WorldTree,
};
pub use scan::{
    scan_paths, scan_paths_with, scan_source, scan_source_with, Outcome, RemoteAnalyzer,
    RemoteReport, ScanOptions, ScanSummary, ScriptResult,
};
pub use sniff::is_shell_script;
pub use stats::{CapHit, CapReason, EngineStats, ProfileReport};
pub use value::{Seg, SymStr};
pub use world::{ExitStatus, World};
