//! The optimization coach (§5 "Performance").
//!
//! "A static optimization engine can serve as the backbone for a
//! suggestion-based optimization coach that — similar to ShellCheck —
//! can be integrated tightly with IDE tooling." The coach consumes the
//! same static information the checkers use and emits *suggestions*
//! rather than diagnostics:
//!
//! * **parallelizable spans** — consecutive commands with no read/write
//!   dependency between them (the information §5 says lets hS reorder
//!   "without needing to guard against misspeculation");
//! * **removable stages** — `cat file | cmd` rewrites to `cmd < file`;
//!   pipeline stages whose output type equals their input type under
//!   the current flow (e.g. `sort` before another `sort`);
//! * **dead code** — commands strictly after an unconditional `exit`.

use crate::checkers::rw_deps;
use shoal_shparse::{Command, ListItem, Script, Span};
use shoal_spec::SpecLibrary;
use std::fmt;

/// One coach suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// Suggestion category.
    pub kind: SuggestionKind,
    /// Source location.
    pub span: Span,
    /// Human-readable advice, with the rewrite where there is one.
    pub message: String,
}

/// Suggestion categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuggestionKind {
    /// Adjacent commands are independent and could run in parallel.
    Parallelizable,
    /// A pipeline stage can be removed or fused.
    RemovableStage,
    /// Unreachable code.
    DeadCode,
}

impl fmt::Display for Suggestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            SuggestionKind::Parallelizable => "parallelizable",
            SuggestionKind::RemovableStage => "removable-stage",
            SuggestionKind::DeadCode => "dead-code",
        };
        write!(f, "{}: [{kind}] {}", self.span, self.message)
    }
}

/// Runs the coach over a script.
pub fn coach(script: &Script, specs: &SpecLibrary) -> Vec<Suggestion> {
    let mut out = Vec::new();
    parallelizable_runs(script, specs, &mut out);
    removable_stages(&script.items, &mut out);
    dead_code(&script.items, &mut out);
    out.sort_by_key(|s| (s.span.line, s.span.start));
    out
}

/// Finds maximal runs of consecutive top-level simple commands with no
/// read/write dependencies among them.
fn parallelizable_runs(script: &Script, specs: &SpecLibrary, out: &mut Vec<Suggestion>) {
    let deps = rw_deps(script, specs);
    // Consider only straight-line, single-pipeline items with literal
    // simple commands; anything else breaks a run.
    let mut run: Vec<(u32, String)> = Vec::new();
    let flush = |run: &mut Vec<(u32, String)>, out: &mut Vec<Suggestion>| {
        if run.len() >= 2 {
            let lines: Vec<u32> = run.iter().map(|(l, _)| *l).collect();
            out.push(Suggestion {
                kind: SuggestionKind::Parallelizable,
                span: Span::new(0, 0, lines[0]),
                message: format!(
                    "lines {} have no read/write dependencies on each other and may run \
                     in parallel (e.g. with `&` + `wait`) or be freely reordered",
                    lines
                        .iter()
                        .map(u32::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
        run.clear();
    };
    for item in &script.items {
        let simple = item.and_or.rest.is_empty()
            && item.and_or.first.commands.len() == 1
            && !item.background;
        let cmd = if simple {
            item.and_or.first.commands.first()
        } else {
            None
        };
        match cmd {
            Some(Command::Simple(sc))
                if sc.name_literal().is_some() && sc.name_literal().as_deref() != Some("exit") =>
            {
                let line = sc.span.line;
                // Does this command depend on anything already in the run?
                let conflict = run.iter().any(|(l, _)| {
                    deps.iter().any(|d| {
                        (d.from_line == *l && d.to_line == line)
                            || (d.from_line == line && d.to_line == *l)
                    })
                });
                if conflict {
                    flush(&mut run, out);
                }
                run.push((line, sc.name_literal().unwrap_or_default()));
            }
            _ => flush(&mut run, out),
        }
    }
    flush(&mut run, out);
}

/// `cat file | cmd` → `cmd < file`; duplicated no-op stages.
fn removable_stages(items: &[ListItem], out: &mut Vec<Suggestion>) {
    for item in items {
        let mut pipes = vec![&item.and_or.first];
        pipes.extend(item.and_or.rest.iter().map(|(_, p)| p));
        for p in pipes {
            if p.commands.len() < 2 {
                continue;
            }
            if let Command::Simple(sc) = &p.commands[0] {
                if sc.name_literal().as_deref() == Some("cat")
                    && sc.words.len() == 2
                    && sc.redirects.is_empty()
                {
                    if let Some(file) = sc.words[1].as_literal() {
                        out.push(Suggestion {
                            kind: SuggestionKind::RemovableStage,
                            span: sc.span,
                            message: format!(
                                "drop the cat stage: feed the next command directly \
                                 (`… < {file}`) and save a process and a pipe"
                            ),
                        });
                    }
                }
            }
            // Identical adjacent sort stages are redundant.
            for pair in p.commands.windows(2) {
                if let (Command::Simple(a), Command::Simple(b)) = (&pair[0], &pair[1]) {
                    if a.name_literal().as_deref() == Some("sort")
                        && b.name_literal().as_deref() == Some("sort")
                        && a.words.iter().map(|w| w.as_literal()).collect::<Vec<_>>()
                            == b.words.iter().map(|w| w.as_literal()).collect::<Vec<_>>()
                    {
                        out.push(Suggestion {
                            kind: SuggestionKind::RemovableStage,
                            span: b.span,
                            message: "duplicate sort stage: sorting sorted input is a no-op"
                                .to_string(),
                        });
                    }
                }
            }
        }
        // Recurse into compound bodies.
        for p in [&item.and_or.first]
            .into_iter()
            .chain(item.and_or.rest.iter().map(|(_, p)| p))
        {
            for c in &p.commands {
                match c {
                    Command::BraceGroup(inner, _, _) | Command::Subshell(inner, _, _) => {
                        removable_stages(inner, out)
                    }
                    Command::If(cl, _, _) => {
                        removable_stages(&cl.then_body, out);
                        if let Some(e) = &cl.else_body {
                            removable_stages(e, out);
                        }
                    }
                    Command::While(cl, _, _) | Command::Until(cl, _, _) => {
                        removable_stages(&cl.body, out)
                    }
                    Command::For(cl, _, _) => removable_stages(&cl.body, out),
                    _ => {}
                }
            }
        }
    }
}

/// Commands after an unconditional top-level `exit`.
fn dead_code(items: &[ListItem], out: &mut Vec<Suggestion>) {
    let mut exited_at: Option<u32> = None;
    for item in items {
        if let Some(line) = exited_at {
            out.push(Suggestion {
                kind: SuggestionKind::DeadCode,
                span: item.and_or.span(),
                message: format!("unreachable: the script exits unconditionally at line {line}"),
            });
            continue;
        }
        if item.and_or.rest.is_empty() && item.and_or.first.commands.len() == 1 {
            if let Command::Simple(sc) = &item.and_or.first.commands[0] {
                if sc.name_literal().as_deref() == Some("exit") {
                    exited_at = Some(sc.span.line);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoal_shparse::parse_script;

    fn suggestions(src: &str) -> Vec<Suggestion> {
        coach(&parse_script(src).unwrap(), &SpecLibrary::builtin())
    }

    #[test]
    fn independent_commands_are_parallelizable() {
        let s = suggestions("touch /a\ntouch /b\ntouch /c\n");
        let p: Vec<_> = s
            .iter()
            .filter(|x| x.kind == SuggestionKind::Parallelizable)
            .collect();
        assert_eq!(p.len(), 1);
        assert!(p[0].message.contains("1, 2, 3"));
    }

    #[test]
    fn dependent_commands_break_the_run() {
        // touch /a → cat /a is a write→read dependency.
        let s = suggestions("touch /a\ncat /a\n");
        assert!(s.iter().all(|x| x.kind != SuggestionKind::Parallelizable));
    }

    #[test]
    fn dependency_splits_into_two_runs() {
        let s = suggestions("touch /a\ntouch /b\ncat /a\ncat /b\n");
        // touch/a,touch/b parallel; then cat/a conflicts with touch/a…
        // run breaks; cat/a + cat/b independent of each other.
        let p: Vec<_> = s
            .iter()
            .filter(|x| x.kind == SuggestionKind::Parallelizable)
            .collect();
        assert!(!p.is_empty());
    }

    #[test]
    fn useless_cat_suggested() {
        let s = suggestions("cat input.txt | grep x | wc -l\n");
        assert!(s
            .iter()
            .any(|x| x.kind == SuggestionKind::RemovableStage && x.message.contains("input.txt")));
    }

    #[test]
    fn duplicate_sort_suggested() {
        let s = suggestions("cat f | sort | sort\n");
        assert!(s
            .iter()
            .any(|x| x.kind == SuggestionKind::RemovableStage
                && x.message.contains("duplicate sort")));
        // Different arguments: not a duplicate.
        let s2 = suggestions("cat f | sort | sort -r\n");
        assert!(!s2.iter().any(|x| x.message.contains("duplicate sort")));
    }

    #[test]
    fn code_after_exit_is_dead() {
        let s = suggestions("echo a\nexit 0\necho never\necho also-never\n");
        let dead: Vec<_> = s
            .iter()
            .filter(|x| x.kind == SuggestionKind::DeadCode)
            .collect();
        assert_eq!(dead.len(), 2);
    }

    #[test]
    fn conditional_exit_is_not_dead_code() {
        let s = suggestions("if [ -f /x ]; then exit 1; fi\necho reachable\n");
        assert!(s.iter().all(|x| x.kind != SuggestionKind::DeadCode));
    }
}
