//! The symbolic executor.
//!
//! [`Engine::exec_items`] walks the AST over *sets of worlds*,
//! implementing the shell's composition semantics: `&&`/`||`
//! short-circuiting on symbolic exit statuses, pipelines (with stream
//! typing), conditionals and loops with success/failure forking, `case`
//! with match-verdict refinement, subshells, functions, and
//! command-substitution capture. Spec-driven transfer functions apply
//! external commands' Hoare cases to the symbolic file system; the
//! checkers run inline where the relevant state is at hand.

use crate::analyze::AnalysisOptions;
use crate::builtins::{exec_builtin, is_builtin};
use crate::checkers::{classify_delete, delete_diag, is_platform_source};
use crate::diag::{DiagCode, Diagnostic, Severity};
use crate::expand::{expand_word, expand_word_single, Field};
use crate::glob::{match_verdict, word_pattern_to_regex, MatchVerdict};
use crate::provenance::{TrailKind, WorldId, WorldTree};
use crate::stats::{CapReason, EngineStats};
use crate::value::{Seg, SymStr};
use crate::world::{ExitStatus, World};
use shoal_relang::Regex;
use shoal_shparse::{
    AndOr, AndOrOp, CaseClause, Command, ForClause, IfClause, ListItem, Pipeline, Script,
    SimpleCommand, Span, WhileClause,
};
use shoal_spec::hoare::{operand_indices, Cond, Effect, ExitSpec, NodeReq};
use shoal_spec::{Invocation, SpecLibrary};
use shoal_streamty::pipeline::{check_pipeline, StageVerdict};
use shoal_streamty::sig_for;
use std::sync::Arc;
use shoal_symfs::state::{NodeState, Require};
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// Fuel/deadline accounting (interior-mutable like [`EngineStats`]).
///
/// Each statement executed over `n` live worlds charges `n` units. Fuel
/// is an exact decrementing counter; the deadline is polled with one
/// `Instant::now()` per [`Budget::POLL_EVERY`] charges so the common
/// case costs a couple of arithmetic ops. Once exhausted, every later
/// charge reports the same reason, so nested `exec_items` loops unwind
/// without re-reporting.
struct Budget {
    fuel_left: Cell<Option<u64>>,
    deadline: Option<Instant>,
    polls: Cell<u32>,
    exhausted: Cell<Option<CapReason>>,
    /// The exhaustion diagnostic/cap-hit has been recorded.
    reported: Cell<bool>,
}

impl Budget {
    const POLL_EVERY: u32 = 64;

    fn new(opts: &AnalysisOptions) -> Budget {
        Budget {
            fuel_left: Cell::new(opts.fuel),
            deadline: opts.deadline.map(|d| Instant::now() + d),
            polls: Cell::new(0),
            exhausted: Cell::new(None),
            reported: Cell::new(false),
        }
    }

    /// Charges `n` units; returns the cap reason once the budget is
    /// gone. Deadline expiry is checked on the first charge and then
    /// every `POLL_EVERY` charges.
    fn charge(&self, n: u64) -> Option<CapReason> {
        if let Some(reason) = self.exhausted.get() {
            return Some(reason);
        }
        if let Some(fuel) = self.fuel_left.get() {
            if fuel < n {
                self.fuel_left.set(Some(0));
                self.exhausted.set(Some(CapReason::Fuel));
                return Some(CapReason::Fuel);
            }
            self.fuel_left.set(Some(fuel - n));
        }
        if let Some(deadline) = self.deadline {
            let polls = self.polls.get();
            self.polls.set(polls.wrapping_add(1));
            if polls.is_multiple_of(Self::POLL_EVERY) && Instant::now() >= deadline {
                self.exhausted.set(Some(CapReason::Deadline));
                return Some(CapReason::Deadline);
            }
        }
        None
    }
}

/// The analysis engine: specification library plus options.
pub struct Engine {
    /// Command specifications.
    pub specs: SpecLibrary,
    /// Analysis options (bounds, ablation switches).
    pub opts: AnalysisOptions,
    /// Inline `#@` annotations in effect (§4 "Ergonomic annotations").
    pub annotations: crate::annotations::Annotations,
    /// Exploration accounting (exact fork/prune/cap counters).
    pub stats: EngineStats,
    /// The world tree recorded during exploration: every fork site adds
    /// child nodes here, and [`crate::analyze`] closes the terminal
    /// leaves (provenance layer).
    pub tree: RefCell<WorldTree>,
    /// Fuel/deadline budget built from the options.
    budget: Budget,
    /// Coverage/precision-loss recorder, written only when
    /// [`AnalysisOptions::audit`] is set: the disabled path holds empty
    /// containers and is never touched (no allocation, no clock reads).
    pub audit: RefCell<crate::audit::AuditRecorder>,
}

impl Engine {
    /// Creates an engine with the built-in spec library.
    pub fn new(opts: AnalysisOptions) -> Engine {
        let budget = Budget::new(&opts);
        Engine {
            specs: SpecLibrary::builtin(),
            opts,
            annotations: crate::annotations::Annotations::default(),
            stats: EngineStats::default(),
            tree: RefCell::new(WorldTree::new()),
            budget,
            audit: RefCell::new(crate::audit::AuditRecorder::default()),
        }
    }

    /// Records a precision loss iff auditing is on (one branch when
    /// off; the site string is built lazily by the caller's closure so
    /// the dark path allocates nothing).
    fn audit_loss(&self, cause: shoal_obs::audit::LossCause, site: impl FnOnce() -> String, n: u64) {
        if self.opts.audit {
            self.audit.borrow_mut().record_loss(cause, site(), n);
        }
    }

    /// Records a command occurrence at a call site iff auditing is on
    /// (deduped per (name, line) by the recorder, never per world).
    fn audit_command(&self, name: &str, line: u32, has_spec: bool) {
        if self.opts.audit {
            self.audit.borrow_mut().record_command(name, line, has_spec);
        }
    }

    /// Records budget exhaustion exactly once: a machine-readable cap
    /// hit plus an [`DiagCode::AnalysisIncomplete`] note on the first
    /// surviving world (the cap hit alone marks the report incomplete
    /// when no world survives to carry the note).
    fn note_budget_exhausted(&self, reason: CapReason, span: Span, worlds: &mut [World]) {
        if self.budget.reported.replace(true) {
            return;
        }
        self.stats.note_cap(reason, span.line, 0);
        let cause = match reason {
            CapReason::Deadline => shoal_obs::audit::LossCause::Deadline,
            _ => shoal_obs::audit::LossCause::Fuel,
        };
        self.audit_loss(cause, || format!("line {}", span.line), 1);
        shoal_obs::event!("budget_exhausted", reason = reason.as_str(), line = span.line);
        let message = match reason {
            CapReason::Fuel => format!(
                "fuel budget ({}) exhausted; statements from line {} on were not analyzed",
                self.opts.fuel.unwrap_or(0),
                span.line
            ),
            CapReason::Deadline => format!(
                "deadline ({} ms) expired; statements from line {} on were not analyzed",
                self.opts
                    .deadline
                    .map(|d| d.as_millis())
                    .unwrap_or_default(),
                span.line
            ),
            other => format!("{other} budget exhausted at line {}", span.line),
        };
        if let Some(w) = worlds.first_mut() {
            w.report(
                Diagnostic::new(DiagCode::AnalysisIncomplete, Severity::Note, span, message)
                    .with_cap(reason)
                    .with_origin("engine:budget"),
            );
        }
    }

    /// Registers `w` as a fork child of world `parent` created at
    /// `site`: assigns its stable id in the world tree and records the
    /// added constraint both on the tree edge and as a typed trail
    /// entry on the world.
    pub(crate) fn branch_child(
        &self,
        parent: WorldId,
        w: &mut World,
        site: &'static str,
        span: Span,
        kind: TrailKind,
        constraint: impl Into<String>,
    ) {
        let text = constraint.into();
        w.id = self
            .tree
            .borrow_mut()
            .fork_child(parent, site, span.line, text.clone());
        w.assume_at(span, kind, text);
    }

    /// Records a fork candidate of world `parent` that refinement
    /// discarded as infeasible.
    pub(crate) fn branch_pruned(
        &self,
        parent: WorldId,
        site: &'static str,
        span: Span,
        constraint: impl Into<String>,
    ) {
        self.tree
            .borrow_mut()
            .mark_pruned(parent, site, span.line, constraint);
    }

    /// Accounts one primitive branch decision: one world considered
    /// `attempted` successor candidates, of which `survived` remain.
    /// This is the *only* place fork/prune counters move, keeping
    /// `terminal = 1 + forks − pruned − cap_dropped` exact (see
    /// [`crate::stats`]).
    pub(crate) fn account_branch(
        &self,
        site: &'static str,
        line: u32,
        attempted: usize,
        survived: usize,
        from: Option<&World>,
    ) {
        shoal_obs::failpoint!("engine::fork");
        if attempted > 1 {
            let new = (attempted - 1) as u64;
            self.stats.forks.set(self.stats.forks.get() + new);
            shoal_obs::counter_add("engine.forks", new);
            shoal_obs::event!(
                "fork",
                site = site,
                line = line,
                new_worlds = new,
                survived = survived,
                pc = from
                    .and_then(|w| w.trail.last().map(|t| t.what.clone()))
                    .unwrap_or_default(),
                pc_len = from.map(|w| w.trail.len()).unwrap_or(0)
            );
        }
        if survived < attempted {
            let n = (attempted - survived) as u64;
            self.stats.pruned.set(self.stats.pruned.get() + n);
            shoal_obs::counter_add("engine.pruned", n);
            shoal_obs::event!(
                "prune",
                site = site,
                line = line,
                dropped = n,
                pc = from
                    .and_then(|w| w.trail.last().map(|t| t.what.clone()))
                    .unwrap_or_default()
            );
        }
    }

    /// Caps the world set, attaching an incompleteness note when
    /// truncating.
    fn cap(&self, mut worlds: Vec<World>, span: Span) -> Vec<World> {
        self.stats.note_live(worlds.len());
        if worlds.len() > self.opts.max_worlds {
            let dropped = worlds.len() - self.opts.max_worlds;
            {
                let mut tree = self.tree.borrow_mut();
                for w in &worlds[self.opts.max_worlds..] {
                    tree.mark_cap_dropped(w.id);
                }
            }
            worlds.truncate(self.opts.max_worlds);
            self.stats.note_cap(CapReason::MaxWorlds, span.line, dropped);
            self.audit_loss(
                shoal_obs::audit::LossCause::WorldCap,
                || format!("line {}", span.line),
                dropped as u64,
            );
            if let Some(w) = worlds.first_mut() {
                let already = w
                    .diags
                    .iter()
                    .any(|d| d.code == DiagCode::AnalysisIncomplete && d.span == span);
                if !already {
                    w.report(
                        Diagnostic::new(
                            DiagCode::AnalysisIncomplete,
                            Severity::Note,
                            span,
                            format!(
                                "path explosion: exploration capped at {} worlds",
                                self.opts.max_worlds
                            ),
                        )
                        .with_cap(CapReason::MaxWorlds)
                        .with_origin("engine:cap"),
                    );
                }
            }
        }
        worlds
    }

    /// Executes a list of items over a set of worlds.
    pub fn exec_items(&self, worlds: Vec<World>, items: &[ListItem]) -> Vec<World> {
        let mut worlds = worlds;
        self.stats.note_live(worlds.len());
        for item in items {
            let (next, keep_going) = self.step(worlds, item);
            worlds = next;
            if !keep_going {
                break;
            }
        }
        worlds
    }

    /// The per-statement transition function: executes one top-level
    /// statement over the live world set and returns the successor set.
    /// This is the resumable unit the incremental engine
    /// ([`crate::incr`]) checkpoints at — statement boundaries are the
    /// only points where the full engine state (worlds, tree, stats,
    /// audit) is a well-defined snapshot. The boolean is false when the
    /// fuel/deadline budget ran out *before* the statement, in which
    /// case the statement was not executed and the remaining statements
    /// must be skipped (every world — and every diagnostic already
    /// found — survives to the report).
    pub fn step(&self, worlds: Vec<World>, item: &ListItem) -> (Vec<World>, bool) {
        let mut worlds = worlds;
        let span = item.and_or.span();
        // Budget check *before* the statement: on exhaustion the
        // remaining statements are skipped but every world — and
        // every diagnostic already found — survives to the report.
        if let Some(reason) = self.budget.charge(worlds.len().max(1) as u64) {
            self.note_budget_exhausted(reason, span, &mut worlds);
            return (worlds, false);
        }
        let (halted, active): (Vec<World>, Vec<World>) =
            worlds.into_iter().partition(|w| w.halted);
        let mut next = halted;
        next.extend(self.exec_and_or(active, &item.and_or));
        if item.background {
            for w in next.iter_mut().filter(|w| !w.halted) {
                w.last_exit = ExitStatus::Zero;
            }
        }
        (self.cap(next, span), true)
    }

    fn exec_and_or(&self, worlds: Vec<World>, and_or: &AndOr) -> Vec<World> {
        let mut current = self.exec_pipeline(worlds, &and_or.first);
        for (op, pipe) in &and_or.rest {
            let mut next = Vec::new();
            let mut run = Vec::new();
            for w in current {
                if w.halted {
                    next.push(w);
                    continue;
                }
                match (op, w.last_exit) {
                    (AndOrOp::And, ExitStatus::Zero) | (AndOrOp::Or, ExitStatus::NonZero) => {
                        run.push(w)
                    }
                    (AndOrOp::And, ExitStatus::NonZero) | (AndOrOp::Or, ExitStatus::Zero) => {
                        next.push(w)
                    }
                    (_, ExitStatus::Unknown) => {
                        self.account_branch("and_or", pipe.span().line, 2, 2, Some(&w));
                        let parent = w.id;
                        let mut skip = w.clone();
                        self.branch_child(
                            parent,
                            &mut skip,
                            "and_or",
                            pipe.span(),
                            TrailKind::Branch,
                            match op {
                                AndOrOp::And => "left side failed",
                                AndOrOp::Or => "left side succeeded",
                            },
                        );
                        next.push(skip);
                        let mut go = w;
                        self.branch_child(
                            parent,
                            &mut go,
                            "and_or",
                            pipe.span(),
                            TrailKind::Branch,
                            match op {
                                AndOrOp::And => "left side succeeded",
                                AndOrOp::Or => "left side failed",
                            },
                        );
                        run.push(go);
                    }
                }
            }
            next.extend(self.exec_pipeline(run, pipe));
            current = self.cap(next, pipe.span());
        }
        current
    }

    fn exec_pipeline(&self, worlds: Vec<World>, pipe: &Pipeline) -> Vec<World> {
        let mut out = Vec::new();
        for world in worlds {
            if world.halted {
                out.push(world);
                continue;
            }
            let mut results = if pipe.commands.len() == 1 {
                self.exec_command(world, &pipe.commands[0])
            } else {
                self.exec_multi_stage(world, pipe)
            };
            if pipe.negated {
                for w in results.iter_mut() {
                    w.last_exit = w.last_exit.negate();
                }
            }
            out.extend(results);
        }
        self.cap(out, pipe.span())
    }

    /// A multi-command pipeline: stream-type it, then run the stages for
    /// their file-system effects.
    fn exec_multi_stage(&self, world: World, pipe: &Pipeline) -> Vec<World> {
        let mut worlds = vec![world];
        // Stream typing happens per world because argument values differ.
        if self.opts.enable_stream_types {
            let mut typed = Vec::new();
            for mut w in worlds {
                self.stream_check_pipeline(&mut w, pipe, None);
                typed.push(w);
            }
            worlds = typed;
        }
        // Effects: run stages in sequence; only the last stage's stdout
        // reaches a surrounding capture.
        for (i, cmd) in pipe.commands.iter().enumerate() {
            let last = i == pipe.commands.len() - 1;
            let mut next = Vec::new();
            for mut w in worlds {
                let saved = if last { None } else { w.capture.take() };
                let mut rs = self.exec_command(w, cmd);
                if !last {
                    for r in rs.iter_mut() {
                        r.capture = saved.clone();
                    }
                }
                next.extend(rs);
            }
            worlds = self.cap(next, cmd.span());
        }
        worlds
    }

    /// Runs the stream-type checker over a pipeline's stages, reporting
    /// dead pipes and type mismatches. Returns the final output line
    /// type when it could be computed. `initial` overrides the first
    /// stage's input type.
    pub fn stream_check_pipeline(
        &self,
        world: &mut World,
        pipe: &Pipeline,
        initial: Option<Regex>,
    ) -> Option<Regex> {
        // Build (label, sig) stages from literal invocations; the first
        // producer contributes the initial type instead of a sig.
        let mut stages = Vec::new();
        let mut input = initial.unwrap_or_else(Regex::any_line);
        for (i, cmd) in pipe.commands.iter().enumerate() {
            let Command::Simple(sc) = cmd else {
                return None;
            };
            let inv = self.literal_invocation(sc)?;
            if let Some(sig) = self.annotations.cmd_sigs.get(&inv.name) {
                // An inline `#@ cmd NAME :: IN -> OUT` annotation takes
                // precedence: the user vouched for this command's type.
                stages.push((inv.to_string(), sig.clone(), sc.span));
            } else if let Some(sig) = sig_for(&inv) {
                stages.push((inv.to_string(), sig, sc.span));
            } else if i == 0 {
                // A producer: take its spec's stdout type as the input.
                if let Some(line) = self.spec_stdout_type(&inv) {
                    input = line;
                } else {
                    input = Regex::any_line();
                }
            } else {
                // Unknown mid-pipeline stage: type information is cut.
                return None;
            }
        }
        if stages.is_empty() {
            return Some(input);
        }
        let named: Vec<(String, shoal_streamty::Sig)> = stages
            .iter()
            .map(|(n, s, _)| (n.clone(), s.clone()))
            .collect();
        let reports = check_pipeline(&input, &named);
        for (report, (_, _, span)) in reports.iter().zip(stages.iter()) {
            match &report.verdict {
                StageVerdict::Ok => {}
                StageVerdict::DeadOutput => {
                    world.report(Diagnostic::new(
                        DiagCode::DeadPipe,
                        Severity::Warning,
                        *span,
                        format!(
                            "`{}` can never produce output here: its input has line type {} \
                             and the intersection is empty",
                            report.name, report.input
                        ),
                    )
                    .with_origin("checker:streamty"));
                }
                StageVerdict::InputMismatch { expected, witness } => {
                    let mut msg = format!(
                        "`{}` expects input lines matching {} but receives {}",
                        report.name, expected, report.input
                    );
                    if let Some(wit) = witness {
                        msg.push_str(&format!(" (e.g. {wit:?})"));
                    }
                    world.report(
                        Diagnostic::new(DiagCode::StreamTypeMismatch, Severity::Warning, *span, msg)
                            .with_origin("checker:streamty"),
                    );
                }
            }
        }
        reports.last().map(|r| r.output.clone())
    }

    /// A purely literal invocation of a simple command, if every word is
    /// static text.
    fn literal_invocation(&self, sc: &SimpleCommand) -> Option<Invocation> {
        let name = sc.name_literal()?;
        let args: Vec<String> = sc.words[1..]
            .iter()
            .map(|w| w.as_literal())
            .collect::<Option<_>>()?;
        match self.specs.get(&name) {
            Some(spec) => spec.syntax.classify(&args).ok(),
            None => {
                // Unknown commands still get a rough invocation: flags by
                // shape (needed for sig_for of, e.g., a filter we know by
                // name but have no spec for).
                let mut flags = Vec::new();
                let mut operands = Vec::new();
                for a in &args {
                    if let Some(f) = a.strip_prefix('-') {
                        flags.extend(f.chars());
                    } else {
                        operands.push(a.as_str());
                    }
                }
                Some(Invocation::new(&name, &flags, &operands.to_vec()))
            }
        }
    }

    /// The stdout line type of a command per its spec.
    fn spec_stdout_type(&self, inv: &Invocation) -> Option<Regex> {
        let spec = self.specs.get(&inv.name)?;
        let mut types = Vec::new();
        for case in spec.applicable(inv) {
            if let Some(pat) = &case.stdout_line {
                types.push(Regex::parse(pat).ok()?);
            }
        }
        if types.is_empty() {
            None
        } else {
            Some(Regex::alt(types))
        }
    }

    // -----------------------------------------------------------------
    // Commands
    // -----------------------------------------------------------------

    fn exec_command(&self, world: World, cmd: &Command) -> Vec<World> {
        match cmd {
            Command::Simple(sc) => self.exec_simple(world, sc),
            Command::BraceGroup(items, _, _) => self.exec_items(vec![world], items),
            Command::Subshell(items, _, _) => self.exec_subshell(world, items),
            Command::If(clause, _, span) => self.exec_if(vec![world], clause, *span),
            Command::While(clause, _, span) => self.exec_while(vec![world], clause, false, *span),
            Command::Until(clause, _, span) => self.exec_while(vec![world], clause, true, *span),
            Command::For(clause, _, span) => self.exec_for(world, clause, *span),
            Command::Case(clause, _, span) => self.exec_case(world, clause, *span),
            Command::FunctionDef { name, body, .. } => {
                let mut w = world;
                w.functions.insert(name.clone(), Arc::new((**body).clone()));
                w.last_exit = ExitStatus::Zero;
                vec![w]
            }
        }
    }

    fn exec_subshell(&self, world: World, items: &[ListItem]) -> Vec<World> {
        let parent_cwd = world.cwd.clone();
        let parent_positional = world.positional.clone();
        let results = self.exec_items(vec![world], items);
        results
            .into_iter()
            .map(|mut r| {
                // A subshell cannot change the parent's cwd, positional
                // parameters, or halt it. Variable *refinements* are kept
                // (see DESIGN.md on the write-leak approximation).
                r.cwd = parent_cwd.clone();
                r.positional = parent_positional.clone();
                r.halted = false;
                r
            })
            .collect()
    }

    /// Runs a script capturing stdout — the implementation of `$(…)`.
    pub fn exec_capture(&self, world: World, script: &Script) -> Vec<(World, SymStr)> {
        let parent_cwd = world.cwd.clone();
        let parent_positional = world.positional.clone();
        let parent_capture = world.capture.clone();
        let mut sub = world;
        sub.capture = Some(SymStr::empty());
        let results = self.exec_items(vec![sub], &script.items);
        results
            .into_iter()
            .map(|mut r| {
                let mut captured = r.capture.take().unwrap_or_default();
                strip_trailing_newlines(&mut captured);
                r.cwd = parent_cwd.clone();
                r.positional = parent_positional.clone();
                r.capture = parent_capture.clone();
                r.halted = false;
                (r, captured)
            })
            .collect()
    }

    fn exec_if(&self, worlds: Vec<World>, clause: &IfClause, span: Span) -> Vec<World> {
        let after_cond = self.exec_items(worlds, &clause.cond);
        let mut out = Vec::new();
        let mut then_worlds = Vec::new();
        let mut else_worlds = Vec::new();
        for w in after_cond {
            if w.halted {
                out.push(w);
                continue;
            }
            match w.last_exit {
                ExitStatus::Zero => then_worlds.push(w),
                ExitStatus::NonZero => else_worlds.push(w),
                ExitStatus::Unknown => {
                    self.account_branch("if", span.line, 2, 2, Some(&w));
                    let parent = w.id;
                    let mut t = w.clone();
                    self.branch_child(
                        parent,
                        &mut t,
                        "if",
                        span,
                        TrailKind::Branch,
                        "condition succeeded",
                    );
                    then_worlds.push(t);
                    let mut e = w;
                    self.branch_child(
                        parent,
                        &mut e,
                        "if",
                        span,
                        TrailKind::Branch,
                        "condition failed",
                    );
                    else_worlds.push(e);
                }
            }
        }
        out.extend(self.exec_items(then_worlds, &clause.then_body));
        // Elifs chain on the else side.
        let mut rest = else_worlds;
        for (cond, body) in &clause.elifs {
            let after = self.exec_items(rest, cond);
            let mut next_rest = Vec::new();
            let mut taken = Vec::new();
            for w in after {
                if w.halted {
                    out.push(w);
                    continue;
                }
                match w.last_exit {
                    ExitStatus::Zero => taken.push(w),
                    ExitStatus::NonZero => next_rest.push(w),
                    ExitStatus::Unknown => {
                        self.account_branch("elif", span.line, 2, 2, Some(&w));
                        let parent = w.id;
                        let mut t = w.clone();
                        self.branch_child(
                            parent,
                            &mut t,
                            "elif",
                            span,
                            TrailKind::Branch,
                            "elif condition succeeded",
                        );
                        taken.push(t);
                        let mut e = w;
                        self.branch_child(
                            parent,
                            &mut e,
                            "elif",
                            span,
                            TrailKind::Branch,
                            "elif condition failed",
                        );
                        next_rest.push(e);
                    }
                }
            }
            out.extend(self.exec_items(taken, body));
            rest = next_rest;
        }
        match &clause.else_body {
            Some(body) => out.extend(self.exec_items(rest, body)),
            None => {
                for mut w in rest {
                    w.last_exit = ExitStatus::Zero;
                    out.push(w);
                }
            }
        }
        out
    }

    fn exec_while(
        &self,
        worlds: Vec<World>,
        clause: &WhileClause,
        until: bool,
        span: Span,
    ) -> Vec<World> {
        let mut exited: Vec<World> = Vec::new();
        let mut active = worlds;
        for _ in 0..self.opts.loop_bound {
            if active.is_empty() {
                break;
            }
            let after_cond = self.exec_items(active, &clause.cond);
            let mut looping = Vec::new();
            for w in after_cond {
                if w.halted {
                    exited.push(w);
                    continue;
                }
                let continues = match (w.last_exit, until) {
                    (ExitStatus::Zero, false) | (ExitStatus::NonZero, true) => Some(true),
                    (ExitStatus::NonZero, false) | (ExitStatus::Zero, true) => Some(false),
                    (ExitStatus::Unknown, _) => None,
                };
                match continues {
                    Some(true) => looping.push(w),
                    Some(false) => {
                        let mut w = w;
                        w.last_exit = ExitStatus::Zero;
                        exited.push(w);
                    }
                    None => {
                        self.account_branch("while", span.line, 2, 2, Some(&w));
                        let parent = w.id;
                        let mut stop = w.clone();
                        self.branch_child(
                            parent,
                            &mut stop,
                            "while",
                            span,
                            TrailKind::Branch,
                            "loop condition ended",
                        );
                        stop.last_exit = ExitStatus::Zero;
                        exited.push(stop);
                        let mut go = w;
                        self.branch_child(
                            parent,
                            &mut go,
                            "while",
                            span,
                            TrailKind::Branch,
                            "loop condition held",
                        );
                        looping.push(go);
                    }
                }
            }
            active = self.exec_items(looping, &clause.body);
        }
        // Beyond the unrolling bound: havoc body-assigned variables and
        // assume the loop eventually exits.
        if !active.is_empty() {
            self.stats.note_cap(CapReason::LoopBound, span.line, 0);
            self.audit_loss(shoal_obs::audit::LossCause::LoopWiden, || format!("line {}", span.line), 1);
        }
        for mut w in active {
            havoc_assigned(&mut w, &clause.body);
            w.assume_at(
                span,
                TrailKind::Widen,
                format!(
                    "loop at {span} ran more than {} times",
                    self.opts.loop_bound
                ),
            );
            w.last_exit = ExitStatus::Zero;
            exited.push(w);
        }
        exited
    }

    fn exec_for(&self, world: World, clause: &ForClause, span: Span) -> Vec<World> {
        let branches: Vec<(World, Vec<Field>)> = match &clause.words {
            Some(words) => {
                let mut states = vec![(world, Vec::new())];
                for word in words {
                    let mut next = Vec::new();
                    for (w, fields) in states {
                        for (w2, fs) in expand_word(self, w, word) {
                            let mut all: Vec<Field> = fields.clone();
                            all.extend(fs);
                            next.push((w2, all));
                        }
                    }
                    states = next;
                }
                states
            }
            None => {
                let fields = world
                    .positional
                    .iter()
                    .map(|v| {
                        let mut f = Field::default();
                        f.chunks.push(crate::expand::Chunk {
                            value: v.clone(),
                            glob_active: true,
                            splittable_expansion: false,
                        });
                        f
                    })
                    .collect();
                vec![(world, fields)]
            }
        };
        let mut out = Vec::new();
        for (w, fields) in branches {
            if fields.len() > self.opts.loop_bound.max(8) {
                // Too many iterations to enumerate: havoc the variable.
                self.stats.note_cap(CapReason::LoopBound, span.line, 0);
                self.audit_loss(shoal_obs::audit::LossCause::LoopWiden, || format!("line {}", span.line), 1);
                let mut w = w;
                let v = w.fresh_sym(Regex::any_line(), &format!("${}", clause.var));
                w.set_var(&clause.var, v);
                let mut worlds = self.exec_items(vec![w], &clause.body);
                for x in worlds.iter_mut() {
                    x.assume_at(
                        span,
                        TrailKind::Widen,
                        format!("for loop at {span} iterated many times"),
                    );
                }
                out.extend(worlds);
                continue;
            }
            let mut worlds = vec![w];
            for field in &fields {
                for x in worlds.iter_mut() {
                    x.set_var(&clause.var, field.value());
                }
                worlds = self.exec_items(worlds, &clause.body);
            }
            if fields.is_empty() {
                for x in worlds.iter_mut() {
                    x.last_exit = ExitStatus::Zero;
                }
            }
            out.extend(worlds);
        }
        out
    }

    fn exec_case(&self, world: World, clause: &CaseClause, span: Span) -> Vec<World> {
        let subjects = expand_word_single(self, world, &clause.subject);
        let mut out = Vec::new();
        for (mut w, subject) in subjects {
            // Platform-dependence: branching on uname/lsb_release output.
            let platform = subject.segs.iter().any(|s| match s {
                Seg::Sym { label, .. } => is_platform_source(label),
                _ => false,
            });
            if platform {
                w.report(Diagnostic::new(
                    DiagCode::PlatformDependent,
                    Severity::Note,
                    span,
                    format!(
                        "control flow depends on platform-specific output ({})",
                        subject.describe()
                    ),
                )
                .with_origin("checker:platform"));
            }
            let mut remaining = Some(w);
            for arm in &clause.arms {
                let Some(current) = remaining.take() else {
                    break;
                };
                let pattern = Regex::alt(arm.patterns.iter().map(word_pattern_to_regex).collect());
                match match_verdict(&subject, &pattern) {
                    MatchVerdict::Always => {
                        out.extend(self.exec_items(vec![current], &arm.body));
                    }
                    MatchVerdict::Never => {
                        remaining = Some(current);
                    }
                    MatchVerdict::Maybe => {
                        // Fork: matched world (refined) runs the arm;
                        // unmatched continues.
                        let sym = subject.as_single_sym().map(|(id, _)| id);
                        let parent = current.id;
                        let mut matched = current.clone();
                        let mut unmatched = current;
                        let mut feasible = true;
                        let mut un_feasible = true;
                        if let (Some(id), true) = (sym, self.opts.enable_pruning) {
                            feasible = matched.refine_sym(id, &pattern);
                            un_feasible = unmatched.refine_sym(id, &pattern.complement());
                        }
                        self.account_branch(
                            "case",
                            span.line,
                            2,
                            usize::from(feasible) + usize::from(un_feasible),
                            Some(&unmatched),
                        );
                        let match_text = format!("{} matches case pattern", subject.describe());
                        let unmatch_text =
                            format!("{} does not match case pattern", subject.describe());
                        if feasible {
                            self.branch_child(
                                parent,
                                &mut matched,
                                "case",
                                span,
                                TrailKind::Constraint,
                                match_text,
                            );
                            out.extend(self.exec_items(vec![matched], &arm.body));
                        } else {
                            self.branch_pruned(parent, "case", span, match_text);
                        }
                        if un_feasible {
                            self.branch_child(
                                parent,
                                &mut unmatched,
                                "case",
                                span,
                                TrailKind::Constraint,
                                unmatch_text,
                            );
                            remaining = Some(unmatched);
                        } else {
                            self.branch_pruned(parent, "case", span, unmatch_text);
                        }
                    }
                }
            }
            if let Some(mut no_match) = remaining {
                no_match.last_exit = ExitStatus::Zero;
                out.push(no_match);
            }
        }
        self.cap(out, span)
    }

    // -----------------------------------------------------------------
    // Simple commands
    // -----------------------------------------------------------------

    fn exec_simple(&self, world: World, sc: &SimpleCommand) -> Vec<World> {
        // 1. Assignments (values expand in the current world).
        let mut states = vec![world];
        for assign in &sc.assignments {
            let mut next = Vec::new();
            for w in states {
                for (mut w2, v) in expand_word_single(self, w, &assign.value) {
                    // Provenance: a computed value that is (or may be)
                    // empty is the seed of the Fig. 1 class of bugs —
                    // record it on the witness trail by variable name.
                    if assign.value.has_expansion() {
                        if v.as_literal().is_some_and(|l| l.is_empty()) {
                            w2.assume_at(
                                assign.value.span,
                                TrailKind::Constraint,
                                format!("${} expands to the empty string", assign.name),
                            );
                        } else if v.may_be_empty() {
                            w2.assume_at(
                                assign.value.span,
                                TrailKind::Constraint,
                                format!("${} may expand to the empty string", assign.name),
                            );
                        }
                    }
                    w2.set_var(&assign.name, v);
                    next.push(w2);
                }
            }
            states = next;
        }
        // 2. Words.
        let mut expanded: Vec<(World, Vec<Field>)> =
            states.into_iter().map(|w| (w, Vec::new())).collect();
        for word in &sc.words {
            let mut next = Vec::new();
            for (w, fields) in expanded {
                for (w2, fs) in expand_word(self, w, word) {
                    let mut all = fields.clone();
                    all.extend(fs);
                    next.push((w2, all));
                }
            }
            expanded = self.cap_pairs(next, sc.span);
        }
        // 3. Redirections: output redirects create/truncate their
        // targets; input redirects require them.
        let mut redirected: Vec<(World, Vec<Field>)> = Vec::new();
        for (w, fields) in expanded {
            let mut states = vec![w];
            for redir in &sc.redirects {
                use shoal_shparse::RedirOp;
                let mut next = Vec::new();
                for w2 in states {
                    for (mut w3, target) in expand_word_single(self, w2, &redir.target) {
                        match redir.op {
                            RedirOp::Out
                            | RedirOp::Append
                            | RedirOp::Clobber
                            | RedirOp::ReadWrite => {
                                if let Some(k) = w3.fs_key(&target) {
                                    let _ = w3.fs.create_file(&k);
                                }
                            }
                            RedirOp::In => {
                                if let Some(k) = w3.fs_key(&target) {
                                    let _ = w3.fs.require(&k, NodeState::File);
                                }
                            }
                            _ => {}
                        }
                        next.push(w3);
                    }
                }
                states = next;
            }
            for w2 in states {
                redirected.push((w2, fields.clone()));
            }
        }
        let expanded = self.cap_pairs(redirected, sc.span);
        let mut out = Vec::new();
        for (mut w, fields) in expanded {
            if w.halted {
                out.push(w);
                continue;
            }
            if fields.is_empty() {
                w.last_exit = ExitStatus::Zero;
                out.push(w);
                continue;
            }
            let name = fields[0].value().as_literal();
            let args = &fields[1..];
            match name.as_deref() {
                None => {
                    w.last_exit = ExitStatus::Unknown;
                    out.push(w);
                }
                Some(n) if w.functions.contains_key(n) => {
                    out.extend(self.exec_function(w, n, args));
                }
                Some(n) if is_builtin(n) => {
                    self.audit_command(n, sc.span.line, true);
                    out.extend(exec_builtin(self, w, n, args, sc.span));
                }
                Some("rm") => {
                    self.audit_command("rm", sc.span.line, true);
                    out.extend(self.exec_rm(w, args, sc.span));
                }
                Some(n) => match self.specs.get(n) {
                    Some(_) => {
                        self.audit_command(n, sc.span.line, true);
                        out.extend(self.exec_specified(w, n, args, sc.span));
                    }
                    None => {
                        // Unknown command: unknown status; a capture gets
                        // an unconstrained value. The audit recorder
                        // dedupes by call site, so however many live
                        // worlds pass through here, the missing-spec
                        // ranking counts this (name, line) once.
                        self.audit_command(n, sc.span.line, false);
                        if w.capture.is_some() {
                            let v = w.fresh_sym(Regex::anything(), &format!("$({n} …)"));
                            w.emit_stdout(v);
                        }
                        w.last_exit = ExitStatus::Unknown;
                        out.push(w);
                    }
                },
            }
        }
        out
    }

    fn cap_pairs<T>(&self, mut pairs: Vec<(World, T)>, span: Span) -> Vec<(World, T)> {
        self.stats.note_live(pairs.len());
        if pairs.len() > self.opts.max_worlds {
            let dropped = pairs.len() - self.opts.max_worlds;
            {
                let mut tree = self.tree.borrow_mut();
                for (w, _) in &pairs[self.opts.max_worlds..] {
                    tree.mark_cap_dropped(w.id);
                }
            }
            pairs.truncate(self.opts.max_worlds);
            self.stats.note_cap(CapReason::Expansion, span.line, dropped);
            self.audit_loss(
                shoal_obs::audit::LossCause::ExpansionCap,
                || format!("line {}", span.line),
                dropped as u64,
            );
            if let Some((w, _)) = pairs.first_mut() {
                w.report(
                    Diagnostic::new(
                        DiagCode::AnalysisIncomplete,
                        Severity::Note,
                        span,
                        format!(
                            "expansion explosion: capped at {} worlds",
                            self.opts.max_worlds
                        ),
                    )
                    .with_cap(CapReason::Expansion)
                    .with_origin("engine:cap"),
                );
            }
        }
        pairs
    }

    fn exec_function(&self, mut world: World, name: &str, args: &[Field]) -> Vec<World> {
        if world.call_depth >= 4 {
            world.last_exit = ExitStatus::Unknown;
            return vec![world];
        }
        let body = world
            .functions
            .get(name)
            .cloned()
            .expect("exec_function is reached only for names just looked up in world.functions");
        let saved = world.positional.clone();
        world.positional = args.iter().map(Field::value).collect();
        world.call_depth += 1;
        let results = self.exec_command(world, &body);
        results
            .into_iter()
            .map(|mut r| {
                r.positional = saved.clone();
                r.call_depth = r.call_depth.saturating_sub(1);
                r
            })
            .collect()
    }

    /// `rm` gets a dedicated model because its arguments may carry
    /// *active glob tails* (`"$STEAMROOT"/*`), which the generic
    /// spec path cannot see. This is where Figs. 1 and 3 are caught.
    fn exec_rm(&self, world: World, args: &[Field], span: Span) -> Vec<World> {
        let mut recursive = false;
        let mut force = false;
        let mut operands: Vec<&Field> = Vec::new();
        for f in args {
            match f.value().as_literal() {
                Some(t) if t.starts_with('-') && t.len() > 1 && operands.is_empty() => {
                    for c in t.chars().skip(1) {
                        match c {
                            'r' | 'R' => recursive = true,
                            'f' => force = true,
                            _ => {}
                        }
                    }
                }
                _ => operands.push(f),
            }
        }
        let mut worlds = vec![world];
        for f in operands {
            let (base, glob_tail) = f.split_trailing_glob();
            // Danger check first — this is the headline Fig. 1 verdict.
            for w in worlds.iter_mut() {
                if let Some(danger) = classify_delete(&base, glob_tail.as_deref()) {
                    w.report(delete_diag(danger, &f.describe(), span));
                }
            }
            // Effects per world.
            let mut next = Vec::new();
            for mut w in worlds {
                let key = w.fs_key(&base);
                match (key, glob_tail.as_deref()) {
                    (Some(k), Some(_)) => {
                        // BASE/*: children removed, node kept.
                        let feasible = w.fs.require(&k, NodeState::Dir).ok();
                        if feasible || force {
                            w.fs.delete_children(&k);
                            w.last_exit = ExitStatus::Zero;
                        } else {
                            w.last_exit = ExitStatus::NonZero;
                        }
                        next.push(w);
                    }
                    (Some(k), None) => {
                        // Whole node. Fork on existence unless -f.
                        let before = next.len();
                        let parent = w.id;
                        let want = if recursive {
                            NodeState::Exists
                        } else {
                            NodeState::File
                        };
                        let mut exists_w = w.clone();
                        let require_outcome = exists_w.fs.require(&k, want);
                        let exists_ok = require_outcome.ok();
                        if exists_ok {
                            self.branch_child(
                                parent,
                                &mut exists_w,
                                "rm",
                                span,
                                TrailKind::FsState,
                                format!("{k} exists"),
                            );
                            // Without -f, rm succeeds only while the
                            // target exists — and we are about to delete
                            // it: idempotence-sensitive.
                            if !force
                                && matches!(require_outcome, shoal_symfs::state::Require::Assumed)
                            {
                                exists_w.fragile_assumptions.push((k.clone(), want, span));
                            }
                            exists_w.fs.delete_tree(&k);
                            exists_w.last_exit = ExitStatus::Zero;
                            next.push(exists_w);
                        } else {
                            self.branch_pruned(parent, "rm", span, format!("{k} exists"));
                        }
                        let mut absent_w = w.clone();
                        let absent_ok = absent_w.fs.require(&k, NodeState::Absent).ok();
                        if absent_ok {
                            self.branch_child(
                                parent,
                                &mut absent_w,
                                "rm",
                                span,
                                TrailKind::FsState,
                                format!("{k} is absent"),
                            );
                            absent_w.last_exit = if force {
                                ExitStatus::Zero
                            } else {
                                ExitStatus::NonZero
                            };
                            next.push(absent_w);
                        } else {
                            self.branch_pruned(parent, "rm", span, format!("{k} is absent"));
                        }
                        if !exists_ok && !absent_ok {
                            // Both impossible: e.g. target is a dir and
                            // -r is missing, after the dir was deleted…
                            w.report(Diagnostic::new(
                                DiagCode::AlwaysFails,
                                Severity::Warning,
                                span,
                                format!("rm {} can never succeed here", base.describe()),
                            )
                            .with_origin("checker:rm"));
                            w.last_exit = ExitStatus::NonZero;
                            next.push(w);
                        } else if !recursive && exists_ok {
                            // A directory without -r fails; we folded
                            // that into the File requirement above.
                        }
                        self.account_branch("rm", span.line, 2, next.len() - before, next.last());
                    }
                    (None, _) => {
                        w.last_exit = ExitStatus::Unknown;
                        next.push(w);
                    }
                }
            }
            worlds = next;
        }
        worlds
    }

    /// Generic spec-driven execution of an external command.
    fn exec_specified(&self, world: World, name: &str, args: &[Field], span: Span) -> Vec<World> {
        let spec = self
            .specs
            .get(name)
            .expect("exec_specified is reached only for names the spec library resolved");
        // Build argv, remembering which operand slots are symbolic.
        let mut argv: Vec<String> = Vec::new();
        let mut symbolic: Vec<(String, SymStr)> = Vec::new();
        for (i, f) in args.iter().enumerate() {
            match f.value().as_literal() {
                Some(t) => argv.push(t),
                None => {
                    let marker = format!("\u{1}sym{i}");
                    symbolic.push((marker.clone(), f.value()));
                    argv.push(marker);
                }
            }
        }
        let inv = match spec.syntax.classify(&argv) {
            Ok(inv) => inv,
            Err(_) => {
                let mut w = world;
                w.last_exit = ExitStatus::Unknown;
                return vec![w];
            }
        };
        let operand_value = |_w: &mut World, idx: usize| -> Option<SymStr> {
            let text = inv.operands.get(idx)?;
            match symbolic.iter().find(|(m, _)| m == text) {
                Some((_, v)) => Some(v.clone()),
                None => Some(SymStr::lit(text)),
            }
        };
        // Borrowed cases: this runs once per live world per statement,
        // so cloning the spec (nested `Vec<String>`s) here was a
        // measurable share of straight-line analysis time.
        let cases: Vec<&shoal_spec::SpecCase> = spec.applicable(&inv).collect();
        if cases.is_empty() {
            let mut w = world;
            w.last_exit = ExitStatus::Unknown;
            return vec![w];
        }
        let mut out = Vec::new();
        let mut any_feasible = false;
        let mut success_feasible = false;
        let success_possible = cases.iter().any(|c| c.exit != ExitSpec::Failure);
        let multi_case = cases.len() > 1;
        let case_label = |case: &shoal_spec::SpecCase| {
            format!(
                "`{inv}` {}",
                match case.exit {
                    ExitSpec::Success => "succeeds",
                    ExitSpec::Failure => "fails",
                    ExitSpec::Unknown => "exits either way",
                }
            )
        };
        for case in &cases {
            let mut w = world.clone();
            // Preconditions.
            let mut feasible = true;
            for Cond::OperandIs(marker, req) in &case.pre {
                let want = match req {
                    NodeReq::File => NodeState::File,
                    NodeReq::Dir => NodeState::Dir,
                    NodeReq::Exists => NodeState::Exists,
                    NodeReq::Absent => NodeState::Absent,
                    NodeReq::Any => continue,
                };
                for idx in operand_indices(*marker, inv.operands.len()) {
                    let Some(v) = operand_value(&mut w, idx) else {
                        continue;
                    };
                    let Some(key) = w.fs_key(&v) else { continue };
                    match w.fs.require(&key, want) {
                        Require::Contradiction(_) => {
                            feasible = false;
                        }
                        outcome => {
                            w.assume_at(span, TrailKind::FsState, format!("{key} is {want}"));
                            // Idempotence sensitivity: this command's
                            // success hinges on `want`; if no other
                            // success case covers the complementary
                            // state, a re-run after the script flips the
                            // state will fail.
                            if matches!(outcome, Require::Assumed)
                                && case.exit != ExitSpec::Failure
                                && !has_success_case_for_complement(&cases, want)
                            {
                                w.fragile_assumptions.push((key.clone(), want, span));
                            }
                        }
                    }
                }
            }
            if !feasible {
                if multi_case {
                    self.branch_pruned(world.id, "spec", span, case_label(case));
                }
                continue;
            }
            if multi_case {
                self.branch_child(
                    world.id,
                    &mut w,
                    "spec",
                    span,
                    TrailKind::FsState,
                    case_label(case),
                );
            }
            any_feasible = true;
            if case.exit != ExitSpec::Failure {
                success_feasible = true;
            }
            // Effects.
            for effect in &case.effects {
                self.apply_effect(&mut w, effect, &inv, &symbolic, case.stdout_line.as_deref());
            }
            w.last_exit = match case.exit {
                ExitSpec::Success => ExitStatus::Zero,
                ExitSpec::Failure => ExitStatus::NonZero,
                ExitSpec::Unknown => ExitStatus::Unknown,
            };
            out.push(w);
        }
        if success_possible && !success_feasible {
            // No *success* behavior is consistent with the current world:
            // the command always fails on this path — the §4
            // `rm $1; cat $1/config` verdict. Only report when the
            // blocking state is the script's *own doing* (an effect);
            // failing on a path where we merely assumed an unlucky
            // initial world is ordinary behavior, not a bug.
            let why = first_contradiction(&self.specs, &world, name, &cases, &inv, &symbolic);
            if let Some((message, script_caused)) = why {
                if script_caused {
                    let diag = Diagnostic::new(
                        DiagCode::AlwaysFails,
                        Severity::Warning,
                        span,
                        format!("`{inv}` can never succeed here: {message}"),
                    )
                    .with_origin(format!("spec:{name}"));
                    match out.first_mut() {
                        Some(w) => w.report(diag),
                        None => {
                            let mut w = world.clone();
                            w.report(diag);
                            w.last_exit = ExitStatus::NonZero;
                            out.push(w);
                        }
                    }
                }
            }
            if out.is_empty() {
                let mut w = world;
                w.last_exit = ExitStatus::NonZero;
                out.push(w);
            }
        } else if !any_feasible {
            let mut w = world;
            w.last_exit = ExitStatus::NonZero;
            out.push(w);
        }
        self.account_branch("spec", span.line, cases.len(), out.len(), out.last());
        self.cap(out, span)
    }

    fn apply_effect(
        &self,
        w: &mut World,
        effect: &Effect,
        inv: &Invocation,
        symbolic: &[(String, SymStr)],
        stdout_line: Option<&str>,
    ) {
        let value_of = |_w: &mut World, idx: usize| -> Option<SymStr> {
            let text = inv.operands.get(idx)?;
            match symbolic.iter().find(|(m, _)| m == text) {
                Some((_, v)) => Some(v.clone()),
                None => Some(SymStr::lit(text)),
            }
        };
        let each = |w: &mut World, marker: usize, f: &mut dyn FnMut(&mut World, SymStr)| {
            for idx in operand_indices(marker, inv.operands.len()) {
                if let Some(v) = value_of(w, idx) {
                    f(w, v);
                }
            }
        };
        match effect {
            Effect::Deletes(m) => each(w, *m, &mut |w, v| {
                if let Some(k) = w.fs_key(&v) {
                    w.fs.delete_tree(&k);
                }
            }),
            Effect::DeletesChildren(m) => each(w, *m, &mut |w, v| {
                if let Some(k) = w.fs_key(&v) {
                    w.fs.delete_children(&k);
                }
            }),
            Effect::CreatesFile(m) => each(w, *m, &mut |w, v| {
                if let Some(k) = w.fs_key(&v) {
                    let _ = w.fs.create_file(&k);
                }
            }),
            Effect::CreatesDir(m) | Effect::CreatesDirChain(m) => each(w, *m, &mut |w, v| {
                if let Some(k) = w.fs_key(&v) {
                    let _ = w.fs.create_dir(&k);
                }
            }),
            Effect::Reads(m) => each(w, *m, &mut |w, v| {
                if let Some(k) = w.fs_key(&v) {
                    let _ = w.fs.require(&k, NodeState::Exists);
                }
            }),
            Effect::Writes(m) => each(w, *m, &mut |w, v| {
                if let Some(k) = w.fs_key(&v) {
                    let _ = w.fs.require(&k, NodeState::Exists);
                }
            }),
            Effect::CopiesTo { src, dst } => {
                let s = value_of(w, *src);
                let d = value_of(w, *dst);
                if let (Some(s), Some(d)) = (s, d) {
                    if let Some(sk) = w.fs_key(&s) {
                        let _ = w.fs.require(&sk, NodeState::Exists);
                    }
                    if let Some(dk) = w.fs_key(&d) {
                        let _ = w.fs.create_file(&dk);
                    }
                }
            }
            Effect::MovesTo { src, dst } => {
                let s = value_of(w, *src);
                let d = value_of(w, *dst);
                if let (Some(s), Some(d)) = (s, d) {
                    if let Some(sk) = w.fs_key(&s) {
                        w.fs.delete_tree(&sk);
                    }
                    if let Some(dk) = w.fs_key(&d) {
                        let _ = w.fs.create_file(&dk);
                    }
                }
            }
            Effect::ChangesCwdTo(m) => {
                if let Some(idx) = operand_indices(*m, inv.operands.len()).first() {
                    if let Some(v) = value_of(w, *idx) {
                        w.cwd = v;
                    }
                }
            }
            Effect::WritesStdout => {
                if w.capture.is_some() {
                    let line_type = stdout_line
                        .and_then(|p| Regex::parse(p).ok())
                        .unwrap_or_else(Regex::any_line);
                    // Zero or more lines of the given type, without the
                    // final newline ($(…) strips it).
                    let lang =
                        Regex::concat(vec![line_type.then(&Regex::byte(b'\n')).star(), line_type])
                            .opt();
                    let v = w.fresh_sym(lang, &format!("$({inv})"));
                    w.emit_stdout(v);
                }
            }
            Effect::WritesStderr => {}
        }
    }
}

/// Does any success case have a precondition compatible with the state
/// complementary to `want`? (Used for idempotence sensitivity: if
/// `want` = Absent and no success case accepts an existing node, the
/// command breaks on re-run once the node exists.)
fn has_success_case_for_complement(cases: &[&shoal_spec::SpecCase], want: NodeState) -> bool {
    let complement_ok = |req: &NodeReq| match want {
        NodeState::Absent => {
            matches!(
                req,
                NodeReq::Exists | NodeReq::File | NodeReq::Dir | NodeReq::Any
            )
        }
        _ => matches!(req, NodeReq::Absent | NodeReq::Any),
    };
    cases.iter().any(|c| {
        c.exit != ExitSpec::Failure
            && c.pre
                .iter()
                .all(|Cond::OperandIs(_, req)| complement_ok(req))
    })
}

/// Finds the blocking precondition for the always-fails message:
/// returns (explanation, script_caused) where `script_caused` is true
/// when the blocking state is an effect the script performed rather
/// than an assumption about the initial world.
fn first_contradiction(
    _specs: &SpecLibrary,
    w: &World,
    _name: &str,
    cases: &[&shoal_spec::SpecCase],
    inv: &Invocation,
    symbolic: &[(String, SymStr)],
) -> Option<(String, bool)> {
    for case in cases {
        if case.exit == ExitSpec::Failure {
            continue;
        }
        let mut probe = w.clone();
        for Cond::OperandIs(marker, req) in &case.pre {
            let want = match req {
                NodeReq::File => NodeState::File,
                NodeReq::Dir => NodeState::Dir,
                NodeReq::Exists => NodeState::Exists,
                NodeReq::Absent => NodeState::Absent,
                NodeReq::Any => continue,
            };
            for idx in operand_indices(*marker, inv.operands.len()) {
                let Some(text) = inv.operands.get(idx) else {
                    continue;
                };
                let v = match symbolic.iter().find(|(m, _)| m == text) {
                    Some((_, v)) => v.clone(),
                    None => SymStr::lit(text),
                };
                let Some(key) = probe.fs_key(&v) else {
                    continue;
                };
                if let Require::Contradiction(c) = probe.fs.require(&key, want) {
                    let assumed = w.fs.determined_by_assumption(&key);
                    return Some((c, !assumed));
                }
            }
        }
    }
    None
}

/// Strips trailing literal newlines from a captured value (the `$(…)`
/// rule).
fn strip_trailing_newlines(v: &mut SymStr) {
    while let Some(Seg::Lit(last)) = v.segs.last_mut() {
        while last.ends_with('\n') {
            last.pop();
        }
        if last.is_empty() {
            v.segs.pop();
        } else {
            break;
        }
    }
}

/// Havocs every variable assigned anywhere in `items` (used after loop
/// widening).
fn havoc_assigned(w: &mut World, items: &[ListItem]) {
    let mut names = Vec::new();
    collect_assigned(items, &mut names);
    for name in names {
        let v = w.fresh_sym(Regex::any_line(), &format!("${name} (loop-widened)"));
        w.set_var(&name, v);
    }
}

fn collect_assigned(items: &[ListItem], out: &mut Vec<String>) {
    for item in items {
        let mut pipes = vec![&item.and_or.first];
        pipes.extend(item.and_or.rest.iter().map(|(_, p)| p));
        for p in pipes {
            for c in &p.commands {
                collect_assigned_cmd(c, out);
            }
        }
    }
}

fn collect_assigned_cmd(cmd: &Command, out: &mut Vec<String>) {
    match cmd {
        Command::Simple(sc) => {
            for a in &sc.assignments {
                out.push(a.name.clone());
            }
            if sc.name_literal().as_deref() == Some("read") {
                for wd in &sc.words[1..] {
                    if let Some(n) = wd.as_literal() {
                        if !n.starts_with('-') {
                            out.push(n);
                        }
                    }
                }
            }
        }
        Command::BraceGroup(items, _, _) | Command::Subshell(items, _, _) => {
            collect_assigned(items, out)
        }
        Command::If(c, _, _) => {
            collect_assigned(&c.cond, out);
            collect_assigned(&c.then_body, out);
            for (cc, bb) in &c.elifs {
                collect_assigned(cc, out);
                collect_assigned(bb, out);
            }
            if let Some(e) = &c.else_body {
                collect_assigned(e, out);
            }
        }
        Command::While(c, _, _) | Command::Until(c, _, _) => {
            collect_assigned(&c.cond, out);
            collect_assigned(&c.body, out);
        }
        Command::For(c, _, _) => {
            out.push(c.var.clone());
            collect_assigned(&c.body, out);
        }
        Command::Case(c, _, _) => {
            for arm in &c.arms {
                collect_assigned(&arm.body, out);
            }
        }
        Command::FunctionDef { body, .. } => collect_assigned_cmd(body, out),
    }
}
