//! What counts as a shell script.
//!
//! `shoal scan` (the batch driver) and `shoal jit`/the analysis daemon
//! must agree on this question — a file the batch scanner analyzes but
//! the JIT client rejects (or vice versa) would make the two surfaces
//! disagree about the same tree. This is the one shared answer: a `.sh`
//! extension, or a shebang first line whose interpreter is a shell
//! (`sh`, `bash`, `dash`, `ksh`, `zsh`, …, including via `env`).

use std::path::Path;

/// True for files the analyzer should treat as shell scripts: `.sh`
/// extension, or an executable-style shebang whose interpreter is a
/// shell. Extensionless files are included purely on their shebang.
pub fn is_shell_script(path: &Path, src: &str) -> bool {
    if path.extension().and_then(|e| e.to_str()) == Some("sh") {
        return true;
    }
    let first = src.lines().next().unwrap_or("");
    first.starts_with("#!") && first.contains("sh")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sh_extension_is_always_shell() {
        assert!(is_shell_script(Path::new("a.sh"), ""));
        assert!(is_shell_script(Path::new("dir/setup.sh"), "not a shebang"));
    }

    #[test]
    fn extensionless_shebang_files_are_shell() {
        // The common installer layout: no extension, shebang only.
        for shebang in [
            "#!/bin/sh",
            "#!/bin/bash",
            "#!/usr/bin/env bash",
            "#!/usr/bin/env sh",
            "#! /bin/sh -e",
        ] {
            assert!(
                is_shell_script(Path::new("install"), &format!("{shebang}\necho hi\n")),
                "shebang {shebang:?} must be recognized on an extensionless file"
            );
        }
    }

    #[test]
    fn non_shell_files_are_excluded() {
        assert!(!is_shell_script(Path::new("main.py"), "#!/usr/bin/python3\n"));
        assert!(!is_shell_script(Path::new("README"), "plain text\n"));
        assert!(!is_shell_script(Path::new("empty"), ""));
        // A shebang not on the first line does not count.
        assert!(!is_shell_script(Path::new("x"), "\n#!/bin/sh\n"));
    }
}
