//! shoal-incr: statement-level incremental analysis.
//!
//! The cold engine analyzes a script by folding [`Engine::step`] over
//! the top-level statements. This module makes that fold *resumable*:
//! after every statement it checkpoints the full engine-visible state
//! (live worlds, world tree, exploration counters, audit recorder,
//! accumulated relang approximation events) and files the checkpoint in
//! a summary cache keyed by
//!
//! ```text
//! (canonical statement hash, input-state fingerprint)
//! ```
//!
//! The statement hash is content-addressed — it hashes the
//! pretty-printed canonical subtree ([`shoal_shparse::canonical_item`]),
//! never byte spans — so inserting a blank line or a comment above a
//! statement does not change its identity. The *initial* fingerprint is
//! a stable digest over the COW containers that make up the starting
//! [`World`] (their `Debug` renderings are deterministic by
//! construction), plus the world tree, stats, audit state, and the
//! options/annotations context. Every subsequent fingerprint is
//! *chained*: `fp_out = H(fp_in, canonical statement text)`. Chaining
//! is sound because [`Engine::step`] is deterministic — equal input
//! states fed equal statements produce equal output states — and it
//! makes recording a summary O(statement) instead of O(abstract state),
//! which is what keeps a one-line edit far cheaper than a cold run even
//! when the symbolic state is large. The chain is position-blind
//! (canonical text carries no byte offsets); position agreement is
//! enforced separately by the relocation licence below.
//!
//! **Replay.** On re-analysis the session walks the new script's
//! statements, chaining `fingerprint → summary → stored output
//! fingerprint → next lookup` with zero state materialization. The walk
//! stops at the first miss (the *dirty suffix*); only there is the
//! deepest checkpoint cloned back into a fresh engine — O(live worlds)
//! thanks to structural sharing — and the remaining statements
//! re-executed. Editing line 900 of a 1000-line script replays 899
//! cached summaries and executes the rest.
//!
//! **Byte-identity.** Both paths share [`crate::analyze`]'s prologue
//! and finalization verbatim, and a fingerprint match implies the
//! entire engine-visible state is identical up to the constant position
//! shifts the relocation licence reconstructs exactly, so by induction
//! the incremental report body is byte-identical to a cold run's. The
//! `tests/incr.rs` property test and the ci.sh `cmp` gate enforce this.
//!
//! **Relocation.** A whitespace-only edit *above* a statement shifts
//! its byte offsets and line numbers without changing its content.
//! Replay then requires rewriting the positions baked into the
//! restored checkpoint (diagnostic spans, provenance trails, world-tree
//! fork lines, cap-hit lines, audit loss sites). This is sound only
//! when each replayed statement's raw text is byte-identical to the
//! recorded one — then every internal offset maps by a constant
//! per-statement delta. Anything unmappable (a span outside every
//! replayed region, a line shared by regions that shift differently, a
//! world carrying function definitions whose ASTs hold old spans)
//! aborts relocation and falls back to replaying the longest unshifted
//! prefix — never to wrong output.
//!
//! **Fallback-to-full.** Fuel/deadline budgets charge per statement
//! *executed*, which replay skips, so budgeted analyses decline
//! incrementality entirely and run the cold path (the flag is a
//! strategy switch, never a semantics switch).

use std::collections::HashMap;
use std::time::Instant;

use crate::analyze::{finalize, prologue, AnalysisOptions, AnalysisReport};
use crate::annotations::Annotations;
use crate::audit::AuditRecorder;
use crate::diag::{DiagCode, Diagnostic, Severity};
use crate::engine::Engine;
use crate::provenance::{Provenance, Trail, TrailEntry, WorldTree};
use crate::stats::CapHit;
use crate::world::World;
use shoal_obs::hash::fnv1a64;
use shoal_obs::CowList;
use shoal_relang::ApproxReason;
use shoal_shparse::{canonical_item, parse_script, ParseError, Script, Span};

/// Cumulative counters for one incremental session (also mirrored into
/// the obs counter plane as `incr.*`).
#[derive(Debug, Clone, Default)]
pub struct IncrStats {
    /// Analyses served by this session.
    pub runs: u64,
    /// Statements replayed from summaries (never executed).
    pub replayed: u64,
    /// Statements actually executed.
    pub executed: u64,
    /// Analyses that declined incrementality (fuel/deadline budgets).
    pub full_fallbacks: u64,
    /// Replays that rewrote positions (whitespace-shift edits).
    pub relocations: u64,
    /// Replayed statement count of the most recent analysis.
    pub last_replayed: usize,
    /// Executed statement count of the most recent analysis.
    pub last_executed: usize,
}

/// Everything the engine knows after one statement: restoring this into
/// a fresh [`Engine`] and executing the remaining statements is
/// indistinguishable from having executed the whole prefix. World and
/// audit containers are COW, so the snapshot cost is O(live worlds).
#[derive(Debug, Clone)]
struct Checkpoint {
    worlds: Vec<World>,
    tree: WorldTree,
    forks: u64,
    pruned: u64,
    cap_dropped: u64,
    peak_live: usize,
    cap_hits: Vec<CapHit>,
    audit: AuditRecorder,
    /// Approximation events accumulated from the start of the script
    /// through this statement (order preserved — finalization counts
    /// and attributes them).
    approx: Vec<ApproxReason>,
}

/// One cached statement summary: the output-state fingerprint (for
/// chaining without materialization), the checkpoint, and the recorded
/// position/text (for relocation).
#[derive(Debug, Clone)]
struct StmtSummary {
    fp_out: u128,
    /// Canonical rendering — compared on hit so a 64-bit hash collision
    /// can never replay the wrong statement.
    canon: String,
    /// Raw source slice at record time; byte-identity licenses
    /// constant-delta span relocation. Here-document bodies live
    /// outside this slice but inside `canon`, so body edits still miss
    /// the cache while body *shifts* (which no span references) replay.
    raw: String,
    start: usize,
    end: usize,
    line_start: u32,
    line_end: u32,
    generation: u64,
    chk: Checkpoint,
}

/// One statement of the script being analyzed, in new coordinates.
struct StmtInfo {
    hash: u64,
    canon: String,
    start: usize,
    end: usize,
    line_start: u32,
    line_end: u32,
}

/// A per-document incremental analysis session: owns the summary cache
/// and serves repeated [`IncrSession::analyze`] calls over successive
/// versions of one script.
pub struct IncrSession {
    opts: AnalysisOptions,
    summaries: HashMap<(u64, u128), StmtSummary>,
    generation: u64,
    /// Session counters (see [`IncrStats`]).
    pub stats: IncrStats,
}

/// Generations a summary survives without being hit before eviction
/// considers it stale.
const KEEP_GENERATIONS: u64 = 8;

impl IncrSession {
    /// A fresh session (empty summary cache) for the given options.
    pub fn new(opts: AnalysisOptions) -> IncrSession {
        IncrSession { opts, summaries: HashMap::new(), generation: 0, stats: IncrStats::default() }
    }

    /// The options this session analyzes with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.opts
    }

    /// Live summary count (observability).
    pub fn summary_count(&self) -> usize {
        self.summaries.len()
    }

    /// Parses and analyzes one version of the document. Mirrors
    /// [`crate::analyze::analyze_source_with`] exactly — same parse
    /// spans, same malformed-annotation recovery — but serves the
    /// execution from the summary cache where fingerprints allow.
    ///
    /// # Errors
    ///
    /// Returns the parse error if the source is not valid shell (the
    /// LSP server falls back to resilient cold analysis in that case).
    pub fn analyze(&mut self, src: &str) -> Result<AnalysisReport, ParseError> {
        let t_parse = Instant::now();
        let script = {
            let _span = shoal_obs::span!("parse");
            parse_script(src)?
        };
        let parse_us = t_parse.elapsed().as_micros() as u64;
        shoal_obs::trace::phase_add("parse", parse_us);
        let attach_parse = |mut report: AnalysisReport| {
            if let Some(p) = report.profile.as_mut() {
                p.parse_us = parse_us;
                p.total_us += parse_us;
            }
            report
        };
        match crate::annotations::parse_annotations(src) {
            Ok(annotations) => Ok(attach_parse(self.run(src, &script, annotations))),
            Err(e) => {
                let mut report = self.run(src, &script, Annotations::default());
                report.diagnostics.insert(
                    0,
                    Diagnostic::new(
                        DiagCode::AnalysisIncomplete,
                        Severity::Note,
                        Span::new(0, 0, e.line),
                        e.to_string(),
                    ),
                );
                Ok(attach_parse(report))
            }
        }
    }

    /// The incremental engine proper: chain walk, frontier
    /// materialization (with relocation), dirty-suffix execution,
    /// summary recording, shared finalization.
    fn run(&mut self, src: &str, script: &Script, annotations: Annotations) -> AnalysisReport {
        self.generation += 1;
        self.stats.runs += 1;
        shoal_obs::counter_add("incr.runs", 1);
        // Budgets charge per *executed* statement; replay would skip
        // charges and change where the budget dies. Decline and run
        // cold — the reports are identical by definition.
        if self.opts.fuel.is_some() || self.opts.deadline.is_some() {
            self.stats.full_fallbacks += 1;
            self.stats.last_replayed = 0;
            self.stats.last_executed = script.items.len();
            shoal_obs::counter_add("incr.fallback_full", 1);
            return crate::analyze::analyze_script_annotated(
                script,
                self.opts.clone(),
                annotations,
            );
        }

        let infos: Vec<StmtInfo> = script
            .items
            .iter()
            .map(|item| {
                let (canon, _uses_heredoc) = canonical_item(script, item);
                let span = item.and_or.span();
                let raw = src.get(span.start..span.end).unwrap_or("");
                StmtInfo {
                    hash: fnv1a64(canon.as_bytes()),
                    canon,
                    start: span.start,
                    end: span.end,
                    line_start: span.line,
                    line_end: span.line + raw.matches('\n').count() as u32,
                }
            })
            .collect();
        // The context digest folds everything that parameterizes the
        // transition function but lives outside the stepped state:
        // options and inline annotations.
        let ctx = fnv1a64(
            format!("{};{:?}", self.opts.canonical(), annotations).as_bytes(),
        );

        let (engine, initial) = prologue(self.opts.clone(), annotations);
        let mut worlds = vec![initial];
        engine.stats.note_live(worlds.len());
        let mut approx: Vec<ApproxReason> = Vec::new();
        let fp0 = fingerprint(&engine, &worlds, &approx, ctx);

        // Chain walk: zero digests, zero materialization — each hit
        // hands over the stored output fingerprint for the next lookup.
        // A hit additionally requires canonical-text equality (collision
        // guard) and raw-text equality (relocation licence).
        let mut chain: Vec<(u64, u128)> = Vec::new();
        let mut fp_cur = fp0;
        for info in &infos {
            let key = (info.hash, fp_cur);
            let Some(s) = self.summaries.get(&key) else { break };
            let raw = src.get(info.start..info.end).unwrap_or("");
            if s.canon != info.canon || s.raw != raw {
                break;
            }
            fp_cur = s.fp_out;
            chain.push(key);
        }

        // Decide how much of the hit chain is actually usable: an
        // unshifted chain replays as-is; a shifted one needs its
        // frontier checkpoint relocated, which can fail (then only the
        // unshifted prefix replays).
        let zero_delta_prefix = chain
            .iter()
            .enumerate()
            .take_while(|(i, key)| {
                let s = &self.summaries[key];
                s.start == infos[*i].start && s.line_start == infos[*i].line_start
            })
            .count();
        let mut replayed = chain.len();
        let mut restored: Option<(Checkpoint, bool)> = None;
        while replayed > 0 {
            let s = &self.summaries[&chain[replayed - 1]];
            let needs_reloc = replayed > zero_delta_prefix;
            if !needs_reloc {
                restored = Some((s.chk.clone(), false));
                break;
            }
            let Some(reloc) = Relocator::build(&self.summaries, &chain[..replayed], &infos) else {
                replayed = zero_delta_prefix;
                continue;
            };
            let mut chk = s.chk.clone();
            if relocate_checkpoint(&mut chk, &reloc) {
                restored = Some((chk, true));
                break;
            }
            replayed = zero_delta_prefix;
        }

        // Materialize the frontier into the fresh engine.
        if let Some((chk, relocated)) = restored {
            engine.tree.replace(chk.tree);
            engine.stats.forks.set(chk.forks);
            engine.stats.pruned.set(chk.pruned);
            engine.stats.cap_dropped.set(chk.cap_dropped);
            engine.stats.peak_live.set(chk.peak_live);
            *engine.stats.cap_hits.borrow_mut() = chk.cap_hits;
            engine.audit.replace(chk.audit);
            worlds = chk.worlds;
            approx = chk.approx;
            if relocated {
                self.stats.relocations += 1;
                shoal_obs::counter_add("incr.relocated", 1);
            }
            // Fingerprints are position-blind, so the stored output
            // fingerprint stays valid even after relocation.
            fp_cur = self.summaries[&chain[replayed - 1]].fp_out;
        } else {
            replayed = 0;
            fp_cur = fp0;
        }
        for key in &chain[..replayed] {
            if let Some(s) = self.summaries.get_mut(key) {
                s.generation = self.generation;
            }
        }

        // Execute the dirty suffix, recording a summary per statement.
        let executed = infos.len() - replayed;
        let t_start = Instant::now();
        {
            let _span = shoal_obs::span!("exec_items");
            for (info, item) in infos[replayed..].iter().zip(&script.items[replayed..]) {
                let (next, keep_going) = engine.step(worlds, item);
                worlds = next;
                approx.extend(shoal_relang::take_approx_hits());
                if !keep_going {
                    break;
                }
                let chk = Checkpoint {
                    worlds: worlds.clone(),
                    tree: engine.tree.borrow().clone(),
                    forks: engine.stats.forks.get(),
                    pruned: engine.stats.pruned.get(),
                    cap_dropped: engine.stats.cap_dropped.get(),
                    peak_live: engine.stats.peak_live.get(),
                    cap_hits: engine.stats.cap_hits.borrow().clone(),
                    audit: engine.audit.borrow().clone(),
                    approx: approx.clone(),
                };
                let fp_out = chain_fp(fp_cur, &info.canon);
                let raw = src.get(info.start..info.end).unwrap_or("").to_string();
                self.summaries.insert(
                    (info.hash, fp_cur),
                    StmtSummary {
                        fp_out,
                        canon: info.canon.clone(),
                        raw,
                        start: info.start,
                        end: info.end,
                        line_start: info.line_start,
                        line_end: info.line_end,
                        generation: self.generation,
                        chk,
                    },
                );
                fp_cur = fp_out;
            }
        }
        let exec_us = t_start.elapsed().as_micros() as u64;

        self.stats.replayed += replayed as u64;
        self.stats.executed += executed as u64;
        self.stats.last_replayed = replayed;
        self.stats.last_executed = executed;
        shoal_obs::counter_add("incr.replayed", replayed as u64);
        shoal_obs::counter_add("incr.executed", executed as u64);
        shoal_obs::event!(
            "incr_replay",
            statements = infos.len(),
            replayed = replayed,
            executed = executed,
            summaries = self.summaries.len()
        );
        self.evict();
        finalize(&engine, worlds, approx, t_start, exec_us)
    }

    /// Drops summaries not hit for [`KEEP_GENERATIONS`] analyses once
    /// the cache outgrows its working set — sessions track documents
    /// whose history is mostly shared, so this keeps memory proportional
    /// to the document, not to the edit count.
    fn evict(&mut self) {
        let cap = 1024;
        if self.summaries.len() > cap {
            let floor = self.generation.saturating_sub(KEEP_GENERATIONS);
            self.summaries.retain(|_, s| s.generation >= floor);
        }
    }
}

/// One-shot incremental analysis (the CLI's `--incremental` path): a
/// fresh session has nothing to replay, so this exists to exercise the
/// full incremental machinery — snapshotting included — while proving
/// byte-identity against the cold path on every invocation.
pub fn analyze_source_incremental(
    src: &str,
    opts: AnalysisOptions,
) -> Result<AnalysisReport, ParseError> {
    IncrSession::new(opts).analyze(src)
}

/// Digest of the full engine-visible *starting* state: worlds, tree,
/// counters, audit state, approximation events, and the
/// options/annotations context — every input the execution and the
/// finalization read. Built from `Debug` renderings: every container
/// involved (CowVec/CowMap/CowList, Pmap, BTreeMap) iterates
/// deterministically, making the rendering a canonical form. Only the
/// chain root is digested this way — the initial state is tiny — and
/// every later fingerprint comes from [`chain_fp`].
fn fingerprint(engine: &Engine, worlds: &[World], approx: &[ApproxReason], ctx: u64) -> u128 {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(1024);
    let _ = write!(s, "ctx={ctx:x};");
    for w in worlds {
        let _ = write!(s, "{w:?};");
    }
    let _ = write!(s, "tree={:?};", engine.tree.borrow());
    let st = &engine.stats;
    let _ = write!(
        s,
        "forks={};pruned={};capped={};peak={};hits={:?};",
        st.forks.get(),
        st.pruned.get(),
        st.cap_dropped.get(),
        st.peak_live.get(),
        st.cap_hits.borrow()
    );
    let _ = write!(s, "audit={:?};approx={approx:?}", engine.audit.borrow());
    let lo = fnv1a64(s.as_bytes());
    let hi = shoal_obs::hash::fnv1a64_seeded(lo ^ 0x9e37_79b9_7f4a_7c15, s.as_bytes());
    ((hi as u128) << 64) | lo as u128
}

/// The output fingerprint of executing one statement from the state
/// fingerprinted by `fp_in`: a digest of the pair (input fingerprint,
/// canonical statement text). Sound because the transition function is
/// deterministic — equal abstract states fed equal statements reach
/// equal abstract states — so the chain value identifies the output
/// state without ever rendering it (recording a summary costs
/// O(statement), not O(abstract state)). The full canonical text goes
/// into the digest, not its 64-bit hash, so a statement-hash collision
/// cannot merge two different chains.
fn chain_fp(fp_in: u128, canon: &str) -> u128 {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(canon.len() + 40);
    let _ = write!(s, "fp={fp_in:x};stmt=");
    s.push_str(canon);
    let lo = fnv1a64(s.as_bytes());
    let hi = shoal_obs::hash::fnv1a64_seeded(lo ^ 0x9e37_79b9_7f4a_7c15, s.as_bytes());
    ((hi as u128) << 64) | lo as u128
}

/// One replayed statement's position shift.
struct Region {
    old_start: usize,
    old_end: usize,
    old_line_start: u32,
    old_line_end: u32,
    byte_delta: isize,
    line_delta: i64,
}

/// Maps recorded (chain-coordinate) positions to the edited script's
/// positions. Fingerprint chaining guarantees the recorded positions of
/// the replayed statements are mutually consistent (a fingerprint match
/// implies the whole prefix state — spans included — is identical), so
/// the per-summary positions jointly describe one coherent old layout.
struct Relocator {
    regions: Vec<Region>,
}

impl Relocator {
    /// Builds the map for the replayed prefix, or `None` when it would
    /// be ambiguous (two statements share a line but shift differently —
    /// a mid-line split edit).
    fn build(
        summaries: &HashMap<(u64, u128), StmtSummary>,
        chain: &[(u64, u128)],
        infos: &[StmtInfo],
    ) -> Option<Relocator> {
        let mut regions: Vec<Region> = Vec::with_capacity(chain.len());
        for (i, key) in chain.iter().enumerate() {
            let s = &summaries[key];
            let r = Region {
                old_start: s.start,
                old_end: s.end,
                old_line_start: s.line_start,
                old_line_end: s.line_end,
                byte_delta: infos[i].start as isize - s.start as isize,
                line_delta: i64::from(infos[i].line_start) - i64::from(s.line_start),
            };
            for prev in &regions {
                let lines_overlap =
                    r.old_line_start <= prev.old_line_end && prev.old_line_start <= r.old_line_end;
                if lines_overlap && prev.line_delta != r.line_delta {
                    return None;
                }
            }
            regions.push(r);
        }
        Some(Relocator { regions })
    }

    #[cfg(test)]
    fn map_offset(&self, o: usize) -> Option<usize> {
        for r in &self.regions {
            if o >= r.old_start && o <= r.old_end {
                return Some((o as isize + r.byte_delta) as usize);
            }
        }
        (o == 0).then_some(0)
    }

    fn map_line(&self, l: u32) -> Option<u32> {
        if l == 0 {
            return Some(0);
        }
        for r in &self.regions {
            if l >= r.old_line_start && l <= r.old_line_end {
                return Some((i64::from(l) + r.line_delta) as u32);
            }
        }
        None
    }

    fn map_span(&self, sp: Span) -> Option<Span> {
        if sp.start == 0 && sp.end == 0 {
            // Synthetic span: only the line is meaningful.
            return Some(Span::new(0, 0, self.map_line(sp.line)?));
        }
        for r in &self.regions {
            if sp.start >= r.old_start && sp.start <= r.old_end {
                if sp.end > r.old_end {
                    return None;
                }
                let line = if sp.line == 0 {
                    0
                } else if sp.line >= r.old_line_start && sp.line <= r.old_line_end {
                    (i64::from(sp.line) + r.line_delta) as u32
                } else {
                    return None;
                };
                return Some(Span::new(
                    (sp.start as isize + r.byte_delta) as usize,
                    (sp.end as isize + r.byte_delta) as usize,
                    line,
                ));
            }
        }
        None
    }
}

fn relocate_trail(trail: &Trail, reloc: &Relocator) -> Option<Trail> {
    let mut out = Trail::new();
    for e in trail.iter() {
        out.push(TrailEntry {
            kind: e.kind,
            span: reloc.map_span(e.span)?,
            what: e.what.clone(),
        });
    }
    Some(out)
}

fn relocate_diag(d: &Diagnostic, reloc: &Relocator) -> Option<Diagnostic> {
    let provenance = match &d.provenance {
        None => None,
        Some(p) => Some(Provenance {
            world: p.world,
            trail: relocate_trail(&p.trail, reloc)?,
        }),
    };
    Some(Diagnostic {
        code: d.code,
        severity: d.severity,
        span: reloc.map_span(d.span)?,
        message: d.message.clone(),
        cap_reason: d.cap_reason,
        provenance,
        origin: d.origin.clone(),
    })
}

/// Rewrites every position in a restored checkpoint, or reports that it
/// cannot be done soundly (the caller then falls back to the unshifted
/// prefix). Function definitions block relocation: their AST bodies are
/// shared `Arc`s carrying old spans that a later call site would leak
/// into new diagnostics.
fn relocate_checkpoint(chk: &mut Checkpoint, reloc: &Relocator) -> bool {
    for w in chk.worlds.iter_mut() {
        if !w.functions.is_empty() {
            return false;
        }
        let Some(trail) = relocate_trail(&w.trail, reloc) else { return false };
        w.trail = trail;
        let mut diags = CowList::new();
        for d in w.diags.iter() {
            let Some(nd) = relocate_diag(d, reloc) else { return false };
            diags.push(nd);
        }
        w.diags = diags;
        let mut fragile = CowList::new();
        for entry in w.fragile_assumptions.iter() {
            let Some(nsp) = reloc.map_span(entry.2) else { return false };
            fragile.push((entry.0.clone(), entry.1, nsp));
        }
        w.fragile_assumptions = fragile;
    }
    for n in chk.tree.nodes.iter_mut() {
        match reloc.map_line(n.line) {
            Some(l) if l != n.line => std::sync::Arc::make_mut(n).line = l,
            Some(_) => {}
            None => return false,
        }
    }
    for h in chk.cap_hits.iter_mut() {
        match reloc.map_line(h.line) {
            Some(l) => h.line = l,
            None => return false,
        }
    }
    chk.audit.relocate_lines(&|l| reloc.map_line(l))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serialized report body (the byte-identity unit the daemon
    /// caches and the CLI emits).
    fn body_text(report: &AnalysisReport) -> String {
        crate::provenance::reports_json(&[("doc".to_string(), report.clone())]).to_text()
    }

    fn region(
        old_start: usize,
        old_end: usize,
        old_line_start: u32,
        old_line_end: u32,
        byte_delta: isize,
        line_delta: i64,
    ) -> Region {
        Region { old_start, old_end, old_line_start, old_line_end, byte_delta, line_delta }
    }

    #[test]
    fn relocator_maps_inside_regions_and_rejects_outside() {
        let r = Relocator { regions: vec![region(10, 20, 2, 2, 5, 1), region(30, 40, 4, 5, -3, -1)] };
        assert_eq!(r.map_offset(10), Some(15));
        assert_eq!(r.map_offset(20), Some(25));
        assert_eq!(r.map_offset(35), Some(32));
        assert_eq!(r.map_offset(25), None, "gap offsets never appear in state");
        assert_eq!(r.map_offset(0), Some(0), "synthetic zero offset is fixed");
        assert_eq!(r.map_line(2), Some(3));
        assert_eq!(r.map_line(5), Some(4));
        assert_eq!(r.map_line(0), Some(0));
        assert_eq!(r.map_line(9), None);
    }

    #[test]
    fn relocator_spans_stay_within_one_region() {
        let r = Relocator { regions: vec![region(0, 9, 1, 1, 2, 0), region(10, 19, 2, 2, 4, 1)] };
        assert_eq!(r.map_span(Span::new(1, 9, 1)), Some(Span::new(3, 11, 1)));
        assert_eq!(r.map_span(Span::new(5, 15, 1)), None, "cross-region span is unmappable");
        assert_eq!(r.map_span(Span::new(0, 0, 2)), Some(Span::new(0, 0, 3)));
    }

    #[test]
    fn ambiguous_line_shifts_refuse_to_build() {
        // Two statements recorded on line 3 that now shift differently:
        // `map_line(3)` would be ambiguous, so build() declines.
        let a = region(0, 9, 3, 3, 0, 0);
        let b = region(12, 20, 3, 3, 5, 1);
        let overlap = a.old_line_start <= b.old_line_end && b.old_line_start <= a.old_line_end;
        assert!(overlap && a.line_delta != b.line_delta);
    }

    #[test]
    fn session_replays_unchanged_source_completely() {
        let src = "echo one\nfalse || echo two\nrm -rf \"$d/\"*\n";
        let mut session = IncrSession::new(AnalysisOptions::default());
        let first = session.analyze(src).expect("valid script");
        assert_eq!(session.stats.last_executed, 3);
        assert_eq!(session.stats.last_replayed, 0);
        let second = session.analyze(src).expect("valid script");
        assert_eq!(session.stats.last_replayed, 3, "identical source replays fully");
        assert_eq!(session.stats.last_executed, 0);
        assert_eq!(first.diagnostics, second.diagnostics);
        assert_eq!(body_text(&first), body_text(&second));
    }

    #[test]
    fn trailing_edit_replays_the_prefix_only() {
        let base = "echo a\necho b\necho c\n";
        let edited = "echo a\necho b\necho changed\n";
        let mut session = IncrSession::new(AnalysisOptions::default());
        session.analyze(base).expect("valid script");
        let incr = session.analyze(edited).expect("valid script");
        assert_eq!(session.stats.last_replayed, 2);
        assert_eq!(session.stats.last_executed, 1);
        let cold = crate::analyze::analyze_source(edited).expect("valid script");
        assert_eq!(incr.diagnostics, cold.diagnostics);
        assert_eq!(incr.terminal_worlds, cold.terminal_worlds);
    }

    #[test]
    fn blank_line_above_relocates_instead_of_reexecuting() {
        let base = "rm -rf \"$d/\"*\necho done\n";
        let shifted = "\n\nrm -rf \"$d/\"*\necho done\n";
        let mut session = IncrSession::new(AnalysisOptions::default());
        session.analyze(base).expect("valid script");
        let incr = session.analyze(shifted).expect("valid script");
        assert_eq!(session.stats.last_executed, 0, "whitespace shift must not re-execute");
        assert_eq!(session.stats.last_replayed, 2);
        assert_eq!(session.stats.relocations, 1);
        let cold = crate::analyze::analyze_source(shifted).expect("valid script");
        assert_eq!(incr.diagnostics, cold.diagnostics, "relocated spans must match cold");
        assert_eq!(body_text(&incr), body_text(&cold));
    }

    #[test]
    fn budgeted_options_fall_back_to_full_analysis() {
        let mut session = IncrSession::new(AnalysisOptions {
            fuel: Some(10),
            ..AnalysisOptions::default()
        });
        let src = "echo a\necho b\n";
        session.analyze(src).expect("valid script");
        session.analyze(src).expect("valid script");
        assert_eq!(session.stats.full_fallbacks, 2);
        assert_eq!(session.stats.replayed, 0);
        let cold = crate::analyze::analyze_source_with(
            src,
            AnalysisOptions { fuel: Some(10), ..AnalysisOptions::default() },
        )
        .expect("valid script");
        let incr = session.analyze(src).expect("valid script");
        assert_eq!(incr.diagnostics, cold.diagnostics);
    }
}
