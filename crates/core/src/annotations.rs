//! Inline annotations (§4 "Ergonomic annotations").
//!
//! "In order to … maintain full compatibility with existing shell
//! interpreters, these constraints should instead join the shell
//! ecosystem through annotations manifesting as specialized inline
//! comments or external files." Annotations are ordinary comments
//! starting with `#@`, invisible to every shell:
//!
//! ```sh
//! #@ type version = [0-9]+\.[0-9]+\.[0-9]+
//! #@ var RELEASE : version
//! #@ cmd mystery-gen :: any -> hex
//! ```
//!
//! * `#@ type NAME = PATTERN` — define a descriptive type alias (adds
//!   to the built-in library: `any`, `hex`, `url`, `longlist`, …);
//! * `#@ var NAME : TYPE` — constrain an environment variable's
//!   possible values; the engine starts `NAME` as a symbol with that
//!   constraint;
//! * `#@ cmd NAME :: TYPE -> TYPE` — declare the stream signature of a
//!   command the analyzer has no specification for, so pipelines
//!   through it stay typed.

use shoal_relang::Regex;
use shoal_streamty::{Sig, TypeAliases};
use std::collections::BTreeMap;
use std::fmt;

/// A parse error in an annotation comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationError {
    /// 1-based line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for AnnotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: bad annotation: {}", self.line, self.message)
    }
}

impl std::error::Error for AnnotationError {}

/// The collected annotations of one script.
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    /// Variable constraints: name → line type.
    pub vars: BTreeMap<String, Regex>,
    /// Command stream signatures: name → signature.
    pub cmd_sigs: BTreeMap<String, Sig>,
    /// The alias table extended with `#@ type` definitions.
    pub aliases: TypeAliases,
}

impl Annotations {
    /// True when the script carries no annotations.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty() && self.cmd_sigs.is_empty()
    }
}

/// Scans source text for `#@` annotation comments (whole-line or
/// trailing) and parses them.
///
/// # Errors
///
/// Returns the first malformed annotation with its line number.
pub fn parse_annotations(src: &str) -> Result<Annotations, AnnotationError> {
    let mut out = Annotations {
        aliases: TypeAliases::builtin(),
        ..Annotations::default()
    };
    for (lineno, line) in src.lines().enumerate() {
        let lineno = lineno as u32 + 1;
        let Some(at) = line.find("#@") else { continue };
        let body = line[at + 2..].trim();
        let err = |m: String| AnnotationError {
            line: lineno,
            message: m,
        };
        if let Some(rest) = body.strip_prefix("type ") {
            let (name, pattern) = rest
                .split_once('=')
                .ok_or_else(|| err("expected `type NAME = PATTERN`".into()))?;
            let ty = out
                .aliases
                .resolve(pattern.trim())
                .map_err(|e| err(e.to_string()))?;
            out.aliases.define(name.trim(), ty);
        } else if let Some(rest) = body.strip_prefix("var ") {
            let (name, ty_text) = rest
                .split_once(':')
                .ok_or_else(|| err("expected `var NAME : TYPE`".into()))?;
            let ty = out
                .aliases
                .resolve(ty_text.trim())
                .map_err(|e| err(e.to_string()))?;
            out.vars.insert(name.trim().to_string(), ty);
        } else if let Some(rest) = body.strip_prefix("cmd ") {
            let (name, sig_text) = rest
                .split_once("::")
                .ok_or_else(|| err("expected `cmd NAME :: IN -> OUT`".into()))?;
            let (input, output) = sig_text
                .split_once("->")
                .ok_or_else(|| err("signature needs `IN -> OUT`".into()))?;
            let input = out
                .aliases
                .resolve(input.trim())
                .map_err(|e| err(e.to_string()))?;
            let output = out
                .aliases
                .resolve(output.trim())
                .map_err(|e| err(e.to_string()))?;
            out.cmd_sigs
                .insert(name.trim().to_string(), Sig::mono(input, output));
        } else {
            return Err(err(format!(
                "unknown annotation {body:?} (expected type/var/cmd)"
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_kinds() {
        let src = "\
#@ type version = [0-9]+\\.[0-9]+
#!/bin/sh
#@ var RELEASE : version
echo ok   #@ cmd mystery :: any -> hex
";
        let a = parse_annotations(src).unwrap();
        assert!(a.vars["RELEASE"].matches(b"1.2"));
        assert!(!a.vars["RELEASE"].matches(b"one.two"));
        let sig = &a.cmd_sigs["mystery"];
        let out = sig.apply(&Regex::any_line()).unwrap();
        assert!(out.matches(b"deadbeef"));
        assert!(!out.matches(b"xyz"));
    }

    #[test]
    fn type_definitions_compose() {
        let src = "#@ type semver = [0-9]+\\.[0-9]+\\.[0-9]+\n#@ var V : semver\n";
        let a = parse_annotations(src).unwrap();
        assert!(a.vars["V"].matches(b"1.2.3"));
    }

    #[test]
    fn builtin_aliases_usable() {
        let a = parse_annotations("#@ var U : url\n").unwrap();
        assert!(a.vars["U"].matches(b"https://x.org/y"));
    }

    #[test]
    fn errors_carry_lines() {
        let e = parse_annotations("echo hi\n#@ bogus thing\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e2 = parse_annotations("#@ var X missing-colon\n").unwrap_err();
        assert_eq!(e2.line, 1);
        assert!(parse_annotations("#@ type T = [unclosed\n").is_err());
        assert!(parse_annotations("#@ cmd c :: onlyinput\n").is_err());
    }

    #[test]
    fn plain_comments_ignored() {
        let a = parse_annotations("# normal comment\necho x # trailing\n").unwrap();
        assert!(a.is_empty());
    }
}
