//! Symbolic word expansion.
//!
//! Expansion is where the shell's dynamicity lives, and where the engine
//! earns its keep: a single word like `"$(cd "${0%/*}" && echo $PWD)"`
//! forks the world several ways (did the `%` pattern match? did `cd`
//! succeed?), and each resulting world carries a differently-constrained
//! value. [`expand_word`] is the monadic workhorse: it returns one
//! `(world, fields)` pair per feasible combination.
//!
//! Expansion also tracks *glob activity*: which chunks of a field came
//! from unquoted positions (where `*` is live). This is what makes the
//! analysis "robust to semantically-equivalent syntactic variants" (§3):
//! `"$STEAMROOT"/*` and `c="/*"; … $STEAMROOT$c` produce the same
//! (base, active `/*` tail) shape.

use crate::engine::Engine;
use crate::glob::{remove_affix, word_pattern_to_regex, Affix};
use crate::provenance::TrailKind;
use crate::value::SymStr;
use crate::world::World;
use shoal_relang::Regex;
use shoal_shparse::{ParamExp, ParamOp, Span, Word, WordPart};

/// Worlds paired with a per-world result.
pub type Branches<T> = Vec<(World, T)>;

/// One chunk of an expanded field: the value plus whether glob
/// metacharacters inside it are active (unquoted).
#[derive(Debug, Clone)]
pub struct Chunk {
    /// The text value.
    pub value: SymStr,
    /// True when the chunk came from an unquoted position.
    pub glob_active: bool,
    /// True when the chunk is an unquoted expansion result, subject to
    /// field splitting.
    pub splittable_expansion: bool,
}

/// One expanded command-line field.
#[derive(Debug, Clone, Default)]
pub struct Field {
    /// Chunks in order.
    pub chunks: Vec<Chunk>,
}

impl Field {
    /// The whole field as one value (glob characters as literal text).
    pub fn value(&self) -> SymStr {
        let mut out = SymStr::empty();
        for c in &self.chunks {
            out = out.concat(&c.value);
        }
        out
    }

    /// Splits the field into a base value and a trailing *active glob
    /// tail*: the longest suffix of literal, glob-active text containing
    /// a metacharacter. `rm -fr "$STEAMROOT"/*` and the `$STEAMROOT$c`
    /// variant both yield (`$STEAMROOT`, Some("/*")).
    pub fn split_trailing_glob(&self) -> (SymStr, Option<String>) {
        let mut tail = String::new();
        let mut split_at = self.chunks.len();
        for (i, c) in self.chunks.iter().enumerate().rev() {
            match (c.glob_active, c.value.as_literal()) {
                (true, Some(text)) => {
                    tail.insert_str(0, &text);
                    split_at = i;
                }
                _ => break,
            }
        }
        if tail.contains('*') || tail.contains('?') || tail.contains('[') {
            let mut base = SymStr::empty();
            for c in &self.chunks[..split_at] {
                base = base.concat(&c.value);
            }
            (base, Some(tail))
        } else {
            (self.value(), None)
        }
    }

    /// Shorthand used by diagnostics.
    pub fn describe(&self) -> String {
        self.value().describe()
    }
}

/// Expands a word into fields (with field splitting of unquoted literal
/// expansions).
pub fn expand_word(eng: &Engine, world: World, word: &Word) -> Branches<Vec<Field>> {
    let chunked = expand_chunks(eng, world, word);
    chunked
        .into_iter()
        .map(|(w, chunks)| (w, split_fields(chunks)))
        .collect()
}

/// Expands a word into a single value (no field splitting): assignment
/// values, `case` subjects, redirect targets, `${x:-w}` operands.
pub fn expand_word_single(eng: &Engine, world: World, word: &Word) -> Branches<SymStr> {
    expand_chunks(eng, world, word)
        .into_iter()
        .map(|(w, chunks)| {
            let mut v = SymStr::empty();
            for c in &chunks {
                v = v.concat(&c.value);
            }
            (w, v)
        })
        .collect()
}

/// Field-splits a chunk sequence: unquoted literal chunks containing
/// whitespace split fields; everything else concatenates. (Splitting of
/// *symbolic* unquoted values is approximated as no-split; see
/// DESIGN.md.)
fn split_fields(chunks: Vec<Chunk>) -> Vec<Field> {
    let mut fields: Vec<Field> = Vec::new();
    let mut current: Option<Field> = None;
    for chunk in chunks {
        match chunk.splittable_text() {
            Some(text) if text.chars().any(|c| c.is_ascii_whitespace()) => {
                let leading = text.starts_with(|c: char| c.is_ascii_whitespace());
                let trailing = text.ends_with(|c: char| c.is_ascii_whitespace());
                if leading {
                    if let Some(f) = current.take() {
                        fields.push(f);
                    }
                }
                let pieces: Vec<&str> = text.split_ascii_whitespace().collect();
                for (i, piece) in pieces.iter().enumerate() {
                    if i > 0 {
                        if let Some(f) = current.take() {
                            fields.push(f);
                        }
                    }
                    current
                        .get_or_insert_with(Field::default)
                        .chunks
                        .push(Chunk {
                            value: SymStr::lit(piece),
                            glob_active: chunk.glob_active,
                            splittable_expansion: false,
                        });
                }
                if trailing {
                    if let Some(f) = current.take() {
                        fields.push(f);
                    }
                }
            }
            _ => {
                current
                    .get_or_insert_with(Field::default)
                    .chunks
                    .push(chunk);
            }
        }
    }
    if let Some(f) = current {
        fields.push(f);
    }
    fields
}

impl Chunk {
    /// The literal text of a *splittable* chunk: from an unquoted
    /// expansion whose value is known. `None` for quoted or symbolic
    /// chunks (which never split).
    fn splittable_text(&self) -> Option<String> {
        if self.splittable_expansion {
            self.value.as_literal()
        } else {
            None
        }
    }
}

/// Expands a word to chunks without splitting.
fn expand_chunks(eng: &Engine, world: World, word: &Word) -> Branches<Vec<Chunk>> {
    let mut states: Branches<Vec<Chunk>> = vec![(world, Vec::new())];
    for part in &word.parts {
        let mut next: Branches<Vec<Chunk>> = Vec::new();
        for (w, chunks) in states {
            for (w2, mut new_chunks) in expand_part(eng, w, part, false) {
                let mut all = chunks.clone();
                all.append(&mut new_chunks);
                next.push((w2, all));
            }
        }
        states = next;
    }
    states
}

fn expand_part(eng: &Engine, world: World, part: &WordPart, quoted: bool) -> Branches<Vec<Chunk>> {
    match part {
        WordPart::Literal(s) => vec![(
            world,
            vec![Chunk {
                value: SymStr::lit(s),
                glob_active: !quoted,
                splittable_expansion: false,
            }],
        )],
        WordPart::SingleQuoted(s) => vec![(
            world,
            vec![Chunk {
                value: SymStr::lit(s),
                glob_active: false,
                splittable_expansion: false,
            }],
        )],
        WordPart::Glob(g) => vec![(
            world,
            vec![Chunk {
                value: SymStr::lit(g),
                glob_active: !quoted,
                splittable_expansion: false,
            }],
        )],
        WordPart::Tilde(user) => {
            let mut w = world;
            let label = match user {
                Some(u) => format!("~{u}"),
                None => "$HOME".to_string(),
            };
            let home = match w.get_var("HOME").cloned() {
                Some(h) if user.is_none() => h,
                _ => {
                    let v = w.fresh_sym(Regex::parse_must(r"/([^/\n]+(/[^/\n]+)*)?"), &label);
                    if user.is_none() {
                        w.set_var("HOME", v.clone());
                    }
                    v
                }
            };
            vec![(
                w,
                vec![Chunk {
                    value: home,
                    glob_active: false,
                    splittable_expansion: false,
                }],
            )]
        }
        WordPart::DoubleQuoted(inner) => {
            let mut states: Branches<Vec<Chunk>> = vec![(world, Vec::new())];
            for p in inner {
                let mut next = Vec::new();
                for (w, chunks) in states {
                    for (w2, mut produced) in expand_part(eng, w, p, true) {
                        let mut all = chunks.clone();
                        for c in produced.iter_mut() {
                            c.glob_active = false;
                            c.splittable_expansion = false;
                        }
                        all.append(&mut produced);
                        next.push((w2, all));
                    }
                }
                states = next;
            }
            states
        }
        WordPart::Param(pe) => expand_param(eng, world, pe, quoted)
            .into_iter()
            .map(|(w, v)| {
                (
                    w,
                    vec![Chunk {
                        value: v,
                        glob_active: !quoted,
                        splittable_expansion: !quoted,
                    }],
                )
            })
            .collect(),
        WordPart::CmdSub(script) => eng
            .exec_capture(world, script)
            .into_iter()
            .map(|(w, v)| {
                (
                    w,
                    vec![Chunk {
                        value: v,
                        glob_active: !quoted,
                        splittable_expansion: !quoted,
                    }],
                )
            })
            .collect(),
        WordPart::Arith(_) => {
            let mut w = world;
            let v = w.fresh_sym(Regex::parse_must("-?[0-9]+"), "$((…))");
            vec![(
                w,
                vec![Chunk {
                    value: v,
                    glob_active: !quoted,
                    splittable_expansion: false,
                }],
            )]
        }
    }
}

/// Expands one parameter expansion, forking per feasible case.
pub fn expand_param(
    eng: &Engine,
    mut world: World,
    pe: &ParamExp,
    quoted: bool,
) -> Branches<SymStr> {
    let current = world.param(&pe.name);
    match &pe.op {
        None => {
            let v = current.unwrap_or_default();
            vec![(world, v)]
        }
        Some(ParamOp::Length) => {
            let v = match current.and_then(|v| v.as_literal()) {
                Some(text) => SymStr::lit(&text.len().to_string()),
                None => world.fresh_sym(Regex::parse_must("[0-9]+"), &format!("${{#{}}}", pe.name)),
            };
            vec![(world, v)]
        }
        Some(ParamOp::Default(word, colon)) => split_on_unset(
            eng,
            world,
            &pe.name,
            current,
            *colon,
            |w, v| vec![(w, v)],
            |eng, w| expand_word_single(eng, w, word),
        ),
        Some(ParamOp::Assign(word, colon)) => {
            let name = pe.name.clone();
            split_on_unset(
                eng,
                world,
                &pe.name,
                current,
                *colon,
                |w, v| vec![(w, v)],
                move |eng, w| {
                    expand_word_single(eng, w, word)
                        .into_iter()
                        .map(|(mut w2, v)| {
                            w2.set_var(&name, v.clone());
                            (w2, v)
                        })
                        .collect()
                },
            )
        }
        Some(ParamOp::Alt(word, colon)) => {
            // `${x:+w}`: the *inverse* of default.
            split_on_unset(
                eng,
                world,
                &pe.name,
                current,
                *colon,
                |w, _v| {
                    // Set (and nonempty, with colon): use the alternative.
                    expand_word_single(eng, w, word)
                },
                |_eng, w| vec![(w, SymStr::empty())],
            )
        }
        Some(ParamOp::Error(msg, colon)) => {
            let name = pe.name.clone();
            let msg_text = msg
                .as_ref()
                .and_then(|m| m.as_literal())
                .unwrap_or_else(|| "parameter null or not set".to_string());
            split_on_unset(
                eng,
                world,
                &pe.name,
                current,
                *colon,
                |w, v| vec![(w, v)],
                move |_eng, mut w| {
                    // The shell aborts here.
                    w.assume(format!("${{{name}:?}} aborted: {msg_text}"));
                    w.halted = true;
                    w.last_exit = crate::world::ExitStatus::NonZero;
                    vec![(w, SymStr::empty())]
                },
            )
        }
        Some(
            op @ (ParamOp::RemoveSmallestSuffix(pat)
            | ParamOp::RemoveLargestSuffix(pat)
            | ParamOp::RemoveSmallestPrefix(pat)
            | ParamOp::RemoveLargestPrefix(pat)),
        ) => {
            let _ = quoted;
            let (affix, longest) = match op {
                ParamOp::RemoveSmallestSuffix(_) => (Affix::Suffix, false),
                ParamOp::RemoveLargestSuffix(_) => (Affix::Suffix, true),
                ParamOp::RemoveSmallestPrefix(_) => (Affix::Prefix, false),
                ParamOp::RemoveLargestPrefix(_) => (Affix::Prefix, true),
                _ => unreachable!("outer match"),
            };
            let value = current.unwrap_or_default();
            // The pattern itself may expand; handle the common literal
            // case precisely, everything else as "unknown pattern".
            let pattern = word_pattern_to_regex(pat);
            let source_sym = value.as_single_sym().map(|(id, _)| id);
            let mut out = Vec::new();
            let mut fresh_world = world.clone();
            let mut fresh = || fresh_world.fresh_sym_id();
            let cases = remove_affix(&value, &pattern, affix, longest, &mut fresh);
            let consumed = fresh_world;
            let attempted = cases.len().max(1);
            let parent = consumed.id;
            let forked = cases.len() > 1;
            for case in cases {
                let mut w = consumed.clone();
                let text = if case.condition.is_empty() {
                    "affix removal".to_string()
                } else {
                    case.condition.clone()
                };
                if let (Some(id), Some(refine), true) = (
                    source_sym,
                    case.source_refinement.as_ref(),
                    eng.opts.enable_pruning,
                ) {
                    if !w.refine_sym(id, refine) {
                        // Infeasible case.
                        eng.branch_pruned(parent, "remove_affix", Span::new(0, 0, 0), text);
                        continue;
                    }
                }
                if forked {
                    eng.branch_child(
                        parent,
                        &mut w,
                        "remove_affix",
                        Span::new(0, 0, 0),
                        TrailKind::Constraint,
                        text,
                    );
                } else if !case.condition.is_empty() {
                    w.assume(case.condition.clone());
                }
                out.push((w, case.result));
            }
            if out.is_empty() {
                out.push((world, SymStr::empty()));
            }
            eng.account_branch(
                "remove_affix",
                0,
                attempted,
                out.len(),
                out.last().map(|(w, _)| w),
            );
            out
        }
    }
}

/// Forks on "parameter is set (and nonempty with `colon`)" vs. not.
/// `on_set` receives the current value; `on_unset` computes the
/// replacement.
fn split_on_unset(
    eng: &Engine,
    world: World,
    name: &str,
    current: Option<SymStr>,
    colon: bool,
    on_set: impl FnOnce(World, SymStr) -> Branches<SymStr>,
    on_unset: impl FnOnce(&Engine, World) -> Branches<SymStr>,
) -> Branches<SymStr> {
    match current {
        None => on_unset(eng, world),
        Some(v) => {
            if !colon {
                return on_set(world, v);
            }
            // With colon, empty counts as unset.
            if v.is_literal_empty() {
                return on_unset(eng, world);
            }
            if v.must_be_nonempty() {
                return on_set(world, v);
            }
            // May be either: fork with refinement.
            let mut out = Vec::new();
            let sym = v.as_single_sym().map(|(id, _)| id);
            let mut set_world = world.clone();
            let mut set_val = v.clone();
            let mut feasible = true;
            if let (Some(id), true) = (sym, eng.opts.enable_pruning) {
                let nonempty = Regex::any_byte().then(&Regex::anything());
                feasible = set_world.refine_sym(id, &nonempty);
                set_val.refine_sym(id, &nonempty);
                set_val.concretize();
            }
            let mut unset_world = world;
            let mut unset_ok = true;
            if let (Some(id), true) = (sym, eng.opts.enable_pruning) {
                unset_ok = unset_world.refine_sym(id, &Regex::eps());
            }
            eng.account_branch(
                "param_split",
                0,
                2,
                usize::from(feasible) + usize::from(unset_ok),
                Some(&unset_world),
            );
            let parent = unset_world.id;
            let set_text = format!("${name} is non-empty");
            if feasible {
                eng.branch_child(
                    parent,
                    &mut set_world,
                    "param_split",
                    Span::new(0, 0, 0),
                    TrailKind::Constraint,
                    set_text,
                );
                out.extend(on_set(set_world, set_val));
            } else {
                eng.branch_pruned(parent, "param_split", Span::new(0, 0, 0), set_text);
            }
            let unset_text = format!("${name} is empty");
            if unset_ok {
                eng.branch_child(
                    parent,
                    &mut unset_world,
                    "param_split",
                    Span::new(0, 0, 0),
                    TrailKind::Constraint,
                    unset_text,
                );
                out.extend(on_unset(eng, unset_world));
            } else {
                eng.branch_pruned(parent, "param_split", Span::new(0, 0, 0), unset_text);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::AnalysisOptions;
    use crate::engine::Engine;
    use shoal_shparse::parse_script;

    fn eng() -> Engine {
        Engine::new(AnalysisOptions::default())
    }

    /// Expands the words of `cmd` (a one-command script) in a fresh
    /// world, returning the fields of the first branch.
    fn fields_of(cmd: &str) -> Vec<Field> {
        let script = parse_script(cmd).unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[0].and_or.first.commands[0] else {
            panic!("expected simple command");
        };
        let engine = eng();
        let mut world = World::initial();
        let mut all = Vec::new();
        for word in &sc.words {
            let branches = expand_word(&engine, world, word);
            let (w, fs) = branches.into_iter().next().expect("at least one branch");
            world = w;
            all.extend(fs);
        }
        all
    }

    #[test]
    fn literal_words_expand_to_literal_fields() {
        let fields = fields_of("echo one two");
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[1].value().as_literal().as_deref(), Some("one"));
    }

    #[test]
    fn quoted_variable_is_single_field() {
        let fields = fields_of("rm \"$1\"");
        assert_eq!(fields.len(), 2);
        assert!(fields[1].value().as_literal().is_none());
    }

    #[test]
    fn field_splitting_of_literal_expansion() {
        let fields = fields_of("x=\"a b  c\"\nuse $x");
        // `fields_of` looks at the first command; do it manually here.
        let script = parse_script("x=\"a b  c\"\nuse $x").unwrap();
        let engine = eng();
        let worlds = engine.exec_items(vec![World::initial()], &script.items[..1]);
        let world = worlds.into_iter().next().unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[1].and_or.first.commands[0] else {
            panic!()
        };
        let branches = expand_word(&engine, world, &sc.words[1]);
        let (_, fs) = branches.into_iter().next().unwrap();
        let texts: Vec<String> = fs.iter().filter_map(|f| f.value().as_literal()).collect();
        assert_eq!(texts, vec!["a", "b", "c"]);
        let _ = fields;
    }

    #[test]
    fn quoted_expansion_does_not_split() {
        let script = parse_script("x=\"a b\"\nuse \"$x\"").unwrap();
        let engine = eng();
        let worlds = engine.exec_items(vec![World::initial()], &script.items[..1]);
        let world = worlds.into_iter().next().unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[1].and_or.first.commands[0] else {
            panic!()
        };
        let branches = expand_word(&engine, world, &sc.words[1]);
        let (_, fs) = branches.into_iter().next().unwrap();
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].value().as_literal().as_deref(), Some("a b"));
    }

    #[test]
    fn glob_tail_detection_quoted_var() {
        // "$STEAMROOT"/* : base is the quoted value, tail is the active /*.
        let fields = fields_of("rm \"$1\"/*");
        let (base, tail) = fields[1].split_trailing_glob();
        assert_eq!(tail.as_deref(), Some("/*"));
        assert!(base.as_literal().is_none());
    }

    #[test]
    fn glob_tail_detection_split_variable() {
        // c="/*"; rm $1$c — the tail arrives through an expansion.
        let script = parse_script("c=\"/*\"\nrm $1$c").unwrap();
        let engine = eng();
        let worlds = engine.exec_items(vec![World::initial()], &script.items[..1]);
        let world = worlds.into_iter().next().unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[1].and_or.first.commands[0] else {
            panic!()
        };
        let branches = expand_word(&engine, world, &sc.words[1]);
        let (_, fs) = branches.into_iter().next().unwrap();
        let (base, tail) = fs[0].split_trailing_glob();
        assert_eq!(tail.as_deref(), Some("/*"));
        assert!(base.as_literal().is_none());
    }

    #[test]
    fn no_glob_tail_when_quoted() {
        // rm "$1/*" — the star is inside quotes: no active glob.
        let fields = fields_of("rm \"$1/*\"");
        let (_, tail) = fields[1].split_trailing_glob();
        assert_eq!(tail, None);
    }

    #[test]
    fn default_value_expansion_forks() {
        // ${x:-d} on an unset variable takes the default.
        let script = parse_script("echo ${x:-fallback}").unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[0].and_or.first.commands[0] else {
            panic!()
        };
        let engine = eng();
        let branches = expand_word(&engine, World::initial(), &sc.words[1]);
        assert_eq!(branches.len(), 1);
        assert_eq!(
            branches[0].1[0].value().as_literal().as_deref(),
            Some("fallback")
        );
    }

    #[test]
    fn assign_default_sets_variable() {
        let script = parse_script("echo ${x:=assigned}").unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[0].and_or.first.commands[0] else {
            panic!()
        };
        let engine = eng();
        let branches = expand_word(&engine, World::initial(), &sc.words[1]);
        let (w, fs) = branches.into_iter().next().unwrap();
        assert_eq!(fs[0].value().as_literal().as_deref(), Some("assigned"));
        assert_eq!(
            w.get_var("x").unwrap().as_literal().as_deref(),
            Some("assigned")
        );
    }

    #[test]
    fn error_expansion_halts_on_unset() {
        let script = parse_script("echo ${x:?boom}").unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[0].and_or.first.commands[0] else {
            panic!()
        };
        let engine = eng();
        let branches = expand_word(&engine, World::initial(), &sc.words[1]);
        assert!(branches.iter().all(|(w, _)| w.halted));
    }

    #[test]
    fn alt_value_expansion() {
        // ${x:+alt} is empty when x is unset, `alt` when set non-empty.
        let engine = eng();
        let script = parse_script("echo ${x:+alt}").unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[0].and_or.first.commands[0] else {
            panic!()
        };
        let unset = expand_word(&engine, World::initial(), &sc.words[1]);
        assert!(unset[0].1[0].value().is_literal_empty());
        let mut w = World::initial();
        w.set_var("x", SymStr::lit("v"));
        let set = expand_word(&engine, w, &sc.words[1]);
        assert_eq!(set[0].1[0].value().as_literal().as_deref(), Some("alt"));
    }

    #[test]
    fn suffix_removal_on_literal() {
        let engine = eng();
        let mut w = World::initial();
        w.set_var("p", SymStr::lit("/home/u/.steam/upd.sh"));
        let script = parse_script("echo ${p%/*}").unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[0].and_or.first.commands[0] else {
            panic!()
        };
        let branches = expand_word(&engine, w, &sc.words[1]);
        assert_eq!(branches.len(), 1);
        assert_eq!(
            branches[0].1[0].value().as_literal().as_deref(),
            Some("/home/u/.steam")
        );
    }

    #[test]
    fn suffix_removal_on_symbol_forks_two_worlds() {
        // ${0%/*}: the paper's split into directory-ish vs filename-ish.
        let engine = eng();
        let script = parse_script("echo ${0%/*}").unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[0].and_or.first.commands[0] else {
            panic!()
        };
        let branches = expand_word(&engine, World::initial(), &sc.words[1]);
        assert_eq!(branches.len(), 2, "matched and unmatched worlds");
    }

    #[test]
    fn command_substitution_value_captured() {
        let engine = eng();
        let script = parse_script("v=$(echo hello)").unwrap();
        let worlds = engine.exec_items(vec![World::initial()], &script.items);
        assert_eq!(worlds.len(), 1);
        assert_eq!(
            worlds[0].get_var("v").unwrap().as_literal().as_deref(),
            Some("hello")
        );
    }

    #[test]
    fn command_substitution_strips_trailing_newline_only() {
        let engine = eng();
        let script = parse_script("v=$(printf 'a\\n\\n')").unwrap();
        let worlds = engine.exec_items(vec![World::initial()], &script.items);
        let v = worlds[0].get_var("v").unwrap().as_literal().unwrap();
        assert!(!v.ends_with('\n'));
    }

    #[test]
    fn tilde_expands_to_home_symbol() {
        let fields = fields_of("ls ~");
        assert!(fields[1].value().as_literal().is_none());
        assert!(fields[1].value().describe().contains("HOME"));
    }

    #[test]
    fn length_of_literal() {
        let engine = eng();
        let mut w = World::initial();
        w.set_var("s", SymStr::lit("abcde"));
        let script = parse_script("echo ${#s}").unwrap();
        let shoal_shparse::Command::Simple(sc) = &script.items[0].and_or.first.commands[0] else {
            panic!()
        };
        let branches = expand_word(&engine, w, &sc.words[1]);
        assert_eq!(branches[0].1[0].value().as_literal().as_deref(), Some("5"));
    }
}
