//! Built-in command models.
//!
//! §3: the engine "models the behavior of key built-in commands, such as
//! `cd` and `[`, analogously to primitive functions in other programming
//! languages". The models here do three jobs:
//!
//! * **state transformation** — `cd` moves the working directory,
//!   assignments bind, `exit` halts;
//! * **forking with refinement** — `[`/`test` splits the world per
//!   outcome and *narrows symbol constraints* on each side, so a check
//!   like `[ "$x" != "/" ]` genuinely protects the then-branch (the
//!   Fig. 2 / Fig. 3 distinction);
//! * **output modeling** — `echo`/`printf`/`pwd` produce precise stdout
//!   values into command-substitution captures, and `realpath` relates
//!   its normalized output to its argument via critical-value splitting
//!   on `""` and `"/"`.

use crate::diag::{DiagCode, Diagnostic, Severity};
use crate::engine::Engine;
use crate::expand::Field;
use crate::provenance::TrailKind;
use crate::value::SymStr;
use crate::world::{ExitStatus, World};
use shoal_relang::Regex;
use shoal_shparse::Span;
use shoal_symfs::normalize_lexical;
use shoal_symfs::state::{NodeState, Require};

/// Is `name` handled by the built-in models?
pub fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        "cd" | "echo"
            | "printf"
            | "pwd"
            | "exit"
            | "test"
            | "["
            | ":"
            | "true"
            | "false"
            | "export"
            | "readonly"
            | "unset"
            | "set"
            | "shift"
            | "read"
            | "realpath"
            | "eval"
            | "wait"
            | "umask"
            | "trap"
    )
}

/// Executes a built-in. `fields` excludes the command name.
pub fn exec_builtin(
    eng: &Engine,
    world: World,
    name: &str,
    fields: &[Field],
    span: Span,
) -> Vec<World> {
    match name {
        ":" | "true" | "wait" | "umask" | "trap" | "readonly" => ok(world),
        "false" => {
            let mut w = world;
            w.last_exit = ExitStatus::NonZero;
            vec![w]
        }
        "echo" => exec_echo(world, fields, false),
        "printf" => exec_echo(world, fields, true),
        "pwd" => {
            let mut w = world;
            let cwd = w.cwd.clone();
            w.emit_stdout(cwd.concat(&SymStr::lit("\n")));
            w.last_exit = ExitStatus::Zero;
            vec![w]
        }
        "exit" => {
            let mut w = world;
            w.halted = true;
            w.last_exit = match fields.first().and_then(|f| f.value().as_literal()) {
                Some(code) if code == "0" => ExitStatus::Zero,
                Some(_) => ExitStatus::NonZero,
                None => w.last_exit,
            };
            vec![w]
        }
        "cd" => exec_cd(eng, world, fields, span),
        "test" | "[" => {
            let mut args: Vec<&Field> = fields.iter().collect();
            if name == "[" {
                match args.last().map(|f| f.value().as_literal()) {
                    Some(Some(ref s)) if s == "]" => {
                        args.pop();
                    }
                    _ => {
                        let mut w = world;
                        w.last_exit = ExitStatus::NonZero;
                        return vec![w];
                    }
                }
            }
            exec_test(eng, world, &args, span)
        }
        "export" => {
            // `export X=v` assignments were already applied by the
            // caller's assignment handling; `export X` is a no-op here.
            ok(world)
        }
        "unset" => {
            let mut w = world;
            for f in fields {
                if let Some(n) = f.value().as_literal() {
                    w.vars.remove(&n);
                }
            }
            w.last_exit = ExitStatus::Zero;
            vec![w]
        }
        "set" => ok(world),
        "shift" => {
            let mut w = world;
            let n: usize = fields
                .first()
                .and_then(|f| f.value().as_literal())
                .and_then(|s| s.parse().ok())
                .unwrap_or(1);
            // With the lazy-positional model the argument count is
            // unbounded; shifting always succeeds.
            w.shift_positional(n);
            w.last_exit = ExitStatus::Zero;
            vec![w]
        }
        "read" => {
            let mut w = world;
            for f in fields {
                if let Some(n) = f.value().as_literal() {
                    if !n.starts_with('-') {
                        let v = w.fresh_sym(Regex::any_line(), &format!("read:{n}"));
                        w.set_var(&n, v);
                    }
                }
            }
            w.last_exit = ExitStatus::Unknown;
            vec![w]
        }
        "realpath" => exec_realpath(eng, world, fields, span),
        "eval" => {
            // Dynamic evaluation is the analyzer's hard boundary: havoc.
            let mut w = world;
            w.report(Diagnostic::new(
                DiagCode::AnalysisIncomplete,
                Severity::Note,
                span,
                "`eval` executes dynamically-constructed code; analysis does not follow it",
            )
            .with_origin("builtin:eval"));
            w.last_exit = ExitStatus::Unknown;
            vec![w]
        }
        other => {
            debug_assert!(!is_builtin(other), "missing dispatch arm for {other}");
            ok(world)
        }
    }
}

fn ok(mut world: World) -> Vec<World> {
    world.last_exit = ExitStatus::Zero;
    vec![world]
}

fn exec_echo(mut world: World, fields: &[Field], printf: bool) -> Vec<World> {
    let mut args: Vec<SymStr> = fields.iter().map(|f| f.value()).collect();
    let mut newline = !printf;
    if !printf {
        if args.first().and_then(SymStr::as_literal).as_deref() == Some("-n") {
            newline = false;
            args.remove(0);
        }
    } else if !args.is_empty() {
        // `printf FMT ARGS…`: approximate the output as the format with
        // the arguments substituted positionally — precise only when the
        // format is `%s`-like; otherwise degrade to concatenation.
        args = vec![args.iter().skip(1).fold(
            match args[0].as_literal() {
                Some(fmt) => SymStr::lit(fmt.split('%').next().unwrap_or("")),
                None => args[0].clone(),
            },
            |acc, a| acc.concat(a),
        )];
    }
    let mut out = SymStr::empty();
    for (i, v) in args.iter().enumerate() {
        if i > 0 {
            out = out.concat(&SymStr::lit(" "));
        }
        out = out.concat(v);
    }
    if newline {
        out = out.concat(&SymStr::lit("\n"));
    }
    world.emit_stdout(out);
    world.last_exit = ExitStatus::Zero;
    vec![world]
}

fn exec_cd(eng: &Engine, world: World, fields: &[Field], span: Span) -> Vec<World> {
    let mut out = Vec::new();
    let target = match fields.first() {
        Some(f) => f.value(),
        None => {
            // `cd` alone goes to $HOME.
            let mut w = world;
            let home = match w.get_var("HOME").cloned() {
                Some(h) => h,
                None => {
                    let v = w.fresh_sym(Regex::parse_must(r"/([^/\n]+(/[^/\n]+)*)?"), "$HOME");
                    w.set_var("HOME", v.clone());
                    v
                }
            };
            w.cwd = home;
            w.last_exit = ExitStatus::Zero;
            return vec![w];
        }
    };
    // `cd ""` fails in most shells without changing directory.
    if target.is_literal_empty() {
        let mut w = world;
        w.last_exit = ExitStatus::NonZero;
        return vec![w];
    }
    let mut w0 = world;
    // A target that *may* expand to the empty string is a likely bug in
    // its own right (the empty expansion silently fails or, in some
    // shells, goes to $HOME) — note it once.
    if target.as_literal().is_none() && target.may_be_empty() {
        w0.report(Diagnostic::new(
            DiagCode::MaybeEmptyExpansion,
            Severity::Note,
            span,
            format!(
                "cd target {} may expand to the empty string; cd then fails (and some \
                 shells go to $HOME instead)",
                target.describe()
            ),
        )
        .with_origin("builtin:cd"));
    }
    let key = w0.fs_key(&target);
    let parent = w0.id;
    // Success world: target is a directory (and in particular not the
    // empty string — `cd ""` fails).
    {
        let mut w = w0.clone();
        let mut feasible = match &key {
            Some(k) => w.fs.require(k, NodeState::Dir).ok(),
            None => true,
        };
        let mut target = target.clone();
        if let Some((id, constraint)) = target.as_single_sym() {
            if constraint.nullable() && eng.opts.enable_pruning {
                let nonempty = Regex::any_byte().then(&Regex::anything());
                feasible = feasible && w.refine_sym(id, &nonempty);
                target.refine_sym(id, &nonempty);
                target.concretize();
            }
        }
        let text = format!("cd {} succeeds", target.describe());
        if feasible {
            w.cwd = absolutize(&w, &target);
            eng.branch_child(parent, &mut w, "cd", span, TrailKind::Branch, text);
            w.last_exit = ExitStatus::Zero;
            out.push(w);
        } else {
            eng.branch_pruned(parent, "cd", span, text);
        }
    }
    // Failure world: target is absent or not a directory.
    {
        let mut w = w0.clone();
        let feasible = match &key {
            Some(k) => {
                let mut probe = w.fs.clone();
                match probe.require(k, NodeState::Absent) {
                    Require::Contradiction(_) => {
                        // Could still be a file.
                        !matches!(w.fs.require(k, NodeState::File), Require::Contradiction(_))
                    }
                    _ => {
                        w.fs = probe;
                        true
                    }
                }
            }
            None => true,
        };
        let text = format!("cd {} fails", target.describe());
        if feasible {
            eng.branch_child(parent, &mut w, "cd", span, TrailKind::Branch, text);
            w.last_exit = ExitStatus::NonZero;
            out.push(w);
        } else {
            eng.branch_pruned(parent, "cd", span, text);
        }
    }
    if out.is_empty() {
        w0.last_exit = ExitStatus::Unknown;
        out.push(w0);
    }
    eng.account_branch("cd", span.line, 2, out.len(), out.last());
    out
}

/// Makes a cd target into the new cwd value: literals join; symbolic
/// absolutish values are taken as-is.
fn absolutize(world: &World, target: &SymStr) -> SymStr {
    if let Some(text) = target.as_literal() {
        if text.starts_with('/') {
            return SymStr::lit(&normalize_lexical(&text));
        }
        if let Some(cwd) = world.cwd.as_literal() {
            return SymStr::lit(&shoal_symfs::join(&cwd, &text));
        }
        return world.cwd.concat(&SymStr::lit(&format!("/{text}")));
    }
    target.clone()
}

/// Models `realpath ARG` with critical-value splitting (see crate docs):
/// the output is related to the input at exactly the values that matter
/// for root-wipe reasoning: `""` and `"/"`.
fn exec_realpath(eng: &Engine, world: World, fields: &[Field], span: Span) -> Vec<World> {
    let Some(f) = fields.iter().find(|f| {
        f.value()
            .as_literal()
            .map(|t| !t.starts_with('-'))
            .unwrap_or(true)
    }) else {
        let mut w = world;
        w.last_exit = ExitStatus::NonZero;
        return vec![w];
    };
    let arg = f.value();
    if let Some(text) = arg.as_literal() {
        let mut w = world;
        let resolved = if text.starts_with('/') {
            normalize_lexical(&text)
        } else if let Some(cwd) = w.cwd.as_literal() {
            shoal_symfs::join(&cwd, &text)
        } else {
            // Unknown cwd: symbolic absolute output.
            let v = w.fresh_sym(
                Regex::parse_must(r"/([^/\n]+(/[^/\n]+)*)?"),
                &format!("realpath {}", text),
            );
            w.emit_stdout(v.concat(&SymStr::lit("\n")));
            w.last_exit = ExitStatus::Zero;
            return vec![w];
        };
        w.emit_stdout(SymStr::lit(&format!("{resolved}\n")));
        w.last_exit = ExitStatus::Zero;
        return vec![w];
    }
    // Symbolic argument: split at the critical values. The argument is
    // usually `⟨sym⟩` or `⟨sym⟩/` (Fig. 2 appends a slash). With pruning
    // disabled (the E9 ablation) the correlation is dropped entirely.
    let mut out = Vec::new();
    if !eng.opts.enable_pruning {
        let mut w = world;
        let v = w.fresh_sym(
            Regex::parse_must(r"/([^/\n]+(/[^/\n]+)*)?"),
            &format!("realpath {}", arg.describe()),
        );
        w.emit_stdout(v.concat(&SymStr::lit("\n")));
        w.last_exit = ExitStatus::Zero;
        return vec![w];
    }
    let sym = arg.segs.iter().find_map(|s| match s {
        crate::value::Seg::Sym { id, .. } => Some(*id),
        _ => None,
    });
    let suffix: String = arg
        .segs
        .iter()
        .skip_while(|s| !matches!(s, crate::value::Seg::Sym { .. }))
        .filter_map(|s| match s {
            crate::value::Seg::Lit(t) => Some(t.as_str()),
            _ => None,
        })
        .collect();
    let critical = ["", "/"];
    let parent = world.id;
    if let Some(id) = sym {
        for crit in critical {
            let mut w = world.clone();
            let text = format!("{} = {:?}", arg.describe(), crit);
            if !w.refine_sym(id, &Regex::lit(crit)) {
                eng.branch_pruned(parent, "realpath", span, text);
                continue;
            }
            let resolved = normalize_lexical(&format!("{crit}{suffix}"));
            let resolved = if resolved.starts_with('/') {
                resolved
            } else {
                "/".to_string()
            };
            eng.branch_child(parent, &mut w, "realpath", span, TrailKind::Constraint, text);
            w.emit_stdout(SymStr::lit(&format!("{resolved}\n")));
            w.last_exit = ExitStatus::Zero;
            out.push(w);
        }
        // The non-critical world: output is an absolute path ≠ "/".
        let mut w = world.clone();
        let neither = Regex::lit("").or(&Regex::lit("/")).complement();
        let text = format!("{} is neither \"\" nor \"/\"", arg.describe());
        if w.refine_sym(id, &neither) {
            let v = w.fresh_sym(
                Regex::parse_must(r"/[^/\n]+(/[^/\n]+)*"),
                &format!("realpath {}", arg.describe()),
            );
            eng.branch_child(parent, &mut w, "realpath", span, TrailKind::Constraint, text);
            w.emit_stdout(v.concat(&SymStr::lit("\n")));
            w.last_exit = ExitStatus::Zero;
            out.push(w);
        } else {
            eng.branch_pruned(parent, "realpath", span, text);
        }
    }
    let attempted = if sym.is_some() { 3 } else { 1 };
    if out.is_empty() {
        let mut w = world;
        let v = w.fresh_sym(
            Regex::parse_must(r"/([^/\n]+(/[^/\n]+)*)?"),
            &format!("realpath {}", arg.describe()),
        );
        w.emit_stdout(v.concat(&SymStr::lit("\n")));
        w.last_exit = ExitStatus::Zero;
        out.push(w);
    }
    eng.account_branch("realpath", span.line, attempted, out.len(), out.last());
    out
}

/// Evaluates `test` arguments, forking per outcome with refinement.
fn exec_test(eng: &Engine, world: World, args: &[&Field], span: Span) -> Vec<World> {
    let vals: Vec<SymStr> = args.iter().map(|f| f.value()).collect();
    let lits: Vec<Option<String>> = vals.iter().map(SymStr::as_literal).collect();
    match vals.len() {
        0 => {
            let mut w = world;
            w.last_exit = ExitStatus::NonZero;
            vec![w]
        }
        1 => {
            // `test STRING`: true iff non-empty.
            fork_on_emptiness(eng, world, &vals[0], /* true_when_empty */ false, span)
        }
        2 => {
            let op = lits[0].as_deref();
            match op {
                Some("-z") => fork_on_emptiness(eng, world, &vals[1], true, span),
                Some("-n") => fork_on_emptiness(eng, world, &vals[1], false, span),
                Some("!") => negate_all(exec_test(eng, world, &args[1..], span)),
                Some("-e") => fork_on_fs(eng, world, &vals[1], NodeState::Exists, span),
                Some("-f") | Some("-s") | Some("-r") | Some("-w") | Some("-x") => {
                    fork_on_fs(eng, world, &vals[1], NodeState::File, span)
                }
                Some("-d") => fork_on_fs(eng, world, &vals[1], NodeState::Dir, span),
                _ => fork_on_emptiness(eng, world, &vals[1], false, span),
            }
        }
        3 => {
            if lits[0].as_deref() == Some("!") {
                return negate_all(exec_test(eng, world, &args[1..], span));
            }
            let op = lits[1].as_deref();
            match op {
                Some("=") | Some("==") => fork_on_equality(eng, world, &vals[0], &vals[2], false, span),
                Some("!=") => fork_on_equality(eng, world, &vals[0], &vals[2], true, span),
                Some(num_op @ ("-eq" | "-ne" | "-lt" | "-le" | "-gt" | "-ge")) => {
                    let result = match (&lits[0], &lits[2]) {
                        (Some(a), Some(b)) => {
                            match (a.trim().parse::<i64>(), b.trim().parse::<i64>()) {
                                (Ok(a), Ok(b)) => Some(match num_op {
                                    "-eq" => a == b,
                                    "-ne" => a != b,
                                    "-lt" => a < b,
                                    "-le" => a <= b,
                                    "-gt" => a > b,
                                    _ => a >= b,
                                }),
                                _ => None,
                            }
                        }
                        _ => None,
                    };
                    let mut w = world;
                    w.last_exit = match result {
                        Some(true) => ExitStatus::Zero,
                        Some(false) => ExitStatus::NonZero,
                        None => ExitStatus::Unknown,
                    };
                    vec![w]
                }
                _ => {
                    let mut w = world;
                    w.last_exit = ExitStatus::Unknown;
                    vec![w]
                }
            }
        }
        _ => {
            if lits[0].as_deref() == Some("!") {
                return negate_all(exec_test(eng, world, &args[1..], span));
            }
            // `-a` / `-o` and longer forms: give up precisely, stay sound.
            let mut w = world;
            w.last_exit = ExitStatus::Unknown;
            vec![w]
        }
    }
}

fn negate_all(mut worlds: Vec<World>) -> Vec<World> {
    for w in worlds.iter_mut() {
        w.last_exit = w.last_exit.negate();
    }
    worlds
}

/// Forks on a value being empty vs. non-empty, refining constraints.
fn fork_on_emptiness(
    eng: &Engine,
    world: World,
    v: &SymStr,
    true_when_empty: bool,
    span: Span,
) -> Vec<World> {
    let status = |empty: bool| {
        if empty == true_when_empty {
            ExitStatus::Zero
        } else {
            ExitStatus::NonZero
        }
    };
    if v.is_literal_empty() {
        let mut w = world;
        w.last_exit = status(true);
        return vec![w];
    }
    if v.must_be_nonempty() {
        let mut w = world;
        w.last_exit = status(false);
        return vec![w];
    }
    let mut out = Vec::new();
    let sym = v.as_single_sym().map(|(id, _)| id);
    let parent = world.id;
    // Empty world.
    {
        let mut w = world.clone();
        let feasible = match (sym, eng.opts.enable_pruning) {
            (Some(id), true) => w.refine_sym(id, &Regex::eps()),
            _ => true,
        };
        let text = format!("{} is empty", v.describe());
        if feasible {
            eng.branch_child(parent, &mut w, "test_empty", span, TrailKind::Constraint, text);
            w.last_exit = status(true);
            out.push(w);
        } else {
            eng.branch_pruned(parent, "test_empty", span, text);
        }
    }
    // Non-empty world.
    {
        let mut w = world;
        let nonempty = Regex::any_byte().then(&Regex::anything());
        let feasible = match (sym, eng.opts.enable_pruning) {
            (Some(id), true) => w.refine_sym(id, &nonempty),
            _ => true,
        };
        let text = format!("{} is non-empty", v.describe());
        if feasible {
            eng.branch_child(parent, &mut w, "test_empty", span, TrailKind::Constraint, text);
            w.last_exit = status(false);
            out.push(w);
        } else {
            eng.branch_pruned(parent, "test_empty", span, text);
        }
    }
    eng.account_branch("test_empty", span.line, 2, out.len(), out.last());
    out
}

/// Forks on string (in)equality, refining single-symbol sides against
/// literal sides.
fn fork_on_equality(
    eng: &Engine,
    world: World,
    a: &SymStr,
    b: &SymStr,
    negated: bool,
    span: Span,
) -> Vec<World> {
    let status = |eq: bool| {
        if eq != negated {
            ExitStatus::Zero
        } else {
            ExitStatus::NonZero
        }
    };
    if let (Some(x), Some(y)) = (a.as_literal(), b.as_literal()) {
        let mut w = world;
        w.last_exit = status(x == y);
        return vec![w];
    }
    // One side symbolic: decide definite cases via languages.
    let la = a.to_regex();
    let lb = b.to_regex();
    if la.disjoint(&lb) {
        let mut w = world;
        w.last_exit = status(false);
        return vec![w];
    }
    // Refinement is possible when one side is a single symbol and the
    // other is literal.
    let (sym_side, lit_side) = match (
        a.as_single_sym(),
        b.as_literal(),
        b.as_single_sym(),
        a.as_literal(),
    ) {
        (Some((id, _)), Some(lit), _, _) => (Some(id), Some(lit)),
        (_, _, Some((id, _)), Some(lit)) => (Some(id), Some(lit)),
        _ => (None, None),
    };
    let mut out = Vec::new();
    let parent = world.id;
    // Equal world.
    {
        let mut w = world.clone();
        let feasible = match (&sym_side, &lit_side, eng.opts.enable_pruning) {
            (Some(id), Some(lit), true) => w.refine_sym(*id, &Regex::lit(lit)),
            _ => true,
        };
        let text = format!("{} = {}", a.describe(), b.describe());
        if feasible {
            eng.branch_child(parent, &mut w, "test_eq", span, TrailKind::Constraint, text);
            w.last_exit = status(true);
            out.push(w);
        } else {
            eng.branch_pruned(parent, "test_eq", span, text);
        }
    }
    // Unequal world.
    {
        let mut w = world;
        let feasible = match (&sym_side, &lit_side, eng.opts.enable_pruning) {
            (Some(id), Some(lit), true) => w.refine_sym(*id, &Regex::lit(lit).complement()),
            _ => true,
        };
        let text = format!("{} != {}", a.describe(), b.describe());
        if feasible {
            eng.branch_child(parent, &mut w, "test_eq", span, TrailKind::Constraint, text);
            w.last_exit = status(false);
            out.push(w);
        } else {
            eng.branch_pruned(parent, "test_eq", span, text);
        }
    }
    eng.account_branch("test_eq", span.line, 2, out.len(), out.last());
    out
}

/// Forks on a file-system predicate, refining the symbolic heap.
fn fork_on_fs(eng: &Engine, world: World, v: &SymStr, want: NodeState, span: Span) -> Vec<World> {
    let mut w0 = world;
    let key = w0.fs_key(v);
    let Some(key) = key else {
        w0.last_exit = ExitStatus::Unknown;
        return vec![w0];
    };
    let mut out = Vec::new();
    let parent = w0.id;
    // True world.
    {
        let mut w = w0.clone();
        let text = format!("{key} is {want}");
        if w.fs.require(&key, want).ok() {
            eng.branch_child(parent, &mut w, "test_fs", span, TrailKind::FsState, text);
            w.last_exit = ExitStatus::Zero;
            out.push(w);
        } else {
            eng.branch_pruned(parent, "test_fs", span, text);
        }
    }
    // False world: the complementary states.
    let complements: &[NodeState] = match want {
        NodeState::Exists => &[NodeState::Absent],
        NodeState::File => &[NodeState::Absent, NodeState::Dir],
        NodeState::Dir => &[NodeState::Absent, NodeState::File],
        NodeState::Absent => &[NodeState::Exists],
    };
    for &c in complements {
        let mut w = w0.clone();
        let text = format!("{key} is {c}");
        if w.fs.require(&key, c).ok() {
            eng.branch_child(parent, &mut w, "test_fs", span, TrailKind::FsState, text);
            w.last_exit = ExitStatus::NonZero;
            out.push(w);
        } else {
            eng.branch_pruned(parent, "test_fs", span, text);
        }
    }
    let attempted = 1 + complements.len();
    if out.is_empty() {
        w0.last_exit = ExitStatus::Unknown;
        out.push(w0);
    }
    eng.account_branch("test_fs", span.line, attempted, out.len(), out.last());
    out
}
