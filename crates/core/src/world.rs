//! Execution worlds: one symbolic state per explored path.
//!
//! A [`World`] is everything the shell interpreter would know at one
//! point of one execution: variable bindings, positional parameters, the
//! working directory, the (symbolic) file system, and the last exit
//! status — plus analyzer bookkeeping: the path condition trail, the
//! diagnostics discovered on this path, and the fresh-symbol counter.
//!
//! The engine explores *sets* of worlds; forking clones a world and
//! refines the two copies differently. Symbols are world-local: `refine`
//! narrows every occurrence of a symbol across the whole state, which is
//! how a check like Fig. 2's `[ "$(realpath …)" != "/" ]` transfers
//! information onto `$STEAMROOT` everywhere it appears.

use crate::diag::Diagnostic;
use crate::provenance::{Provenance, Trail, TrailEntry, TrailKind, WorldId};
use crate::value::{Seg, SymId, SymStr};
use shoal_obs::{CowList, CowMap, CowVec};
use shoal_relang::Regex;
use shoal_shparse::{Command, Span};
use shoal_symfs::key::SymBase;
use shoal_symfs::{join, normalize_lexical, FsKey, SymFs};
use std::sync::Arc;

/// The engine's view of an exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// Definitely 0.
    Zero,
    /// Definitely non-zero.
    NonZero,
    /// Could be either.
    Unknown,
}

impl ExitStatus {
    /// Negation (`!` pipelines).
    pub fn negate(self) -> ExitStatus {
        match self {
            ExitStatus::Zero => ExitStatus::NonZero,
            ExitStatus::NonZero => ExitStatus::Zero,
            ExitStatus::Unknown => ExitStatus::Unknown,
        }
    }
}

/// One symbolic execution state.
///
/// Every collection-valued field is structurally shared (`Arc`-backed
/// COW containers from `shoal-obs`, plus the persistent map inside
/// [`SymFs`]), so **cloning a world — the engine's fork primitive — is
/// O(1)**: a dozen refcount bumps instead of a deep copy of state that
/// grows with script length. Mutation stays safe because every write
/// path goes through copy-on-write (`Arc::make_mut`) or persistent
/// path-copying: a forked child never observes, and never leaks writes
/// into, its parent.
#[derive(Debug, Clone)]
pub struct World {
    /// This world's node in the run's world tree (assigned at the fork
    /// site that created it; the initial world is 0). Cloned children
    /// inherit the parent's id until the engine registers the fork.
    pub id: WorldId,
    /// Shell variables.
    pub vars: CowMap<String, SymStr>,
    /// Positional parameters `$1…`.
    pub positional: CowVec<SymStr>,
    /// `$0`.
    pub script_name: SymStr,
    /// The working directory as a symbolic string.
    pub cwd: SymStr,
    /// The symbolic file system.
    pub fs: SymFs,
    /// Status of the last command.
    pub last_exit: ExitStatus,
    /// Typed conjuncts of the path condition, in the order they were
    /// assumed (the provenance trail). A persistent list: pushes are
    /// O(1) even right after a fork, and [`World::report`] shares it
    /// with the diagnostic instead of copying it.
    pub trail: Trail,
    /// Diagnostics found on this path, oldest first. A persistent list
    /// for the same reason as `trail`: sibling worlds share the prefix
    /// they inherited from their fork point, so reporting after a fork
    /// is O(1) instead of a deep copy of everything found so far.
    pub diags: CowList<Diagnostic>,
    /// True after `exit`.
    pub halted: bool,
    /// Captured stdout when evaluating a command substitution.
    pub capture: Option<SymStr>,
    /// Idempotence-sensitive assumption sites: (location, what was
    /// assumed, where) for commands that would *not* succeed on a
    /// second run if the script changes that state (see
    /// `checkers`/analyze's idempotence pass).
    pub fragile_assumptions: CowList<(FsKey, shoal_symfs::state::NodeState, shoal_shparse::Span)>,
    /// Shell functions defined so far (bodies behind `Arc`: calling a
    /// function never copies its AST).
    pub functions: CowMap<String, Arc<Command>>,
    /// Function-call nesting depth (bounds recursion).
    pub call_depth: u32,
    /// Positional parameters beyond `positional`, materialized lazily as
    /// symbols (the analyzed script may be invoked with arguments).
    lazy_positional: CowMap<usize, SymStr>,
    /// Fresh-symbol counter (world-local; ids are only compared within
    /// one world).
    next_sym: SymId,
    /// String symbol → file-system base anchor.
    sym_bases: CowMap<SymId, SymBase>,
    /// Fresh FS base counter.
    next_base: SymBase,
}

impl World {
    /// The initial world: unknown `$0`, unknown environment, symbolic
    /// cwd, empty FS knowledge.
    pub fn initial() -> World {
        let mut w = World {
            id: 0,
            vars: CowMap::new(),
            positional: CowVec::new(),
            script_name: SymStr::empty(),
            cwd: SymStr::empty(),
            fs: SymFs::new(),
            last_exit: ExitStatus::Zero,
            trail: Trail::new(),
            diags: CowList::new(),
            halted: false,
            capture: None,
            fragile_assumptions: CowList::new(),
            functions: CowMap::new(),
            call_depth: 0,
            lazy_positional: CowMap::new(),
            next_sym: 0,
            next_base: 0,
            sym_bases: CowMap::new(),
        };
        // `$0` is a path-shaped string: the script's invocation name.
        let zero = w.fresh_sym(Regex::parse_must("/?([^/\n]+/)*[^/\n]+"), "$0");
        w.script_name = zero;
        // The initial working directory is some absolute path.
        let cwd = w.fresh_sym(Regex::parse_must(r"/([^/\n]+(/[^/\n]+)*)?"), "$PWD");
        w.cwd = cwd;
        w
    }

    /// Allocates a fresh symbol with a constraint.
    pub fn fresh_sym(&mut self, constraint: Regex, label: &str) -> SymStr {
        let id = self.next_sym;
        self.next_sym += 1;
        SymStr::sym(id, constraint, label)
    }

    /// Allocates a fresh symbol id without building a value.
    pub fn fresh_sym_id(&mut self) -> SymId {
        let id = self.next_sym;
        self.next_sym += 1;
        id
    }

    /// Looks up a variable; unset variables are `None`.
    pub fn get_var(&self, name: &str) -> Option<&SymStr> {
        self.vars.get(name)
    }

    /// Sets a variable.
    pub fn set_var(&mut self, name: &str, value: SymStr) {
        self.vars.insert(name.to_string(), value);
    }

    /// Reads a parameter by its expansion name (`0`–`9`, specials,
    /// variables). Unset variables expand to empty **and are reported by
    /// the caller**, matching shell semantics.
    pub fn param(&mut self, name: &str) -> Option<SymStr> {
        match name {
            "0" => Some(self.script_name.clone()),
            "?" => Some(match self.last_exit {
                ExitStatus::Zero => SymStr::lit("0"),
                ExitStatus::NonZero => self.fresh_sym(Regex::parse_must("[1-9][0-9]*"), "$?"),
                ExitStatus::Unknown => self.fresh_sym(Regex::parse_must("[0-9]+"), "$?"),
            }),
            "#" => Some(SymStr::lit(&self.positional.len().to_string())),
            "$" => Some(self.fresh_sym(Regex::parse_must("[0-9]+"), "$$")),
            "!" => Some(self.fresh_sym(Regex::parse_must("[0-9]+"), "$!")),
            "-" => Some(self.fresh_sym(Regex::parse_must("[a-z]*"), "$-")),
            "*" | "@" => {
                let mut joined = SymStr::empty();
                for (i, p) in self.positional.iter().enumerate() {
                    if i > 0 {
                        joined = joined.concat(&SymStr::lit(" "));
                    }
                    joined = joined.concat(p);
                }
                Some(joined)
            }
            "PWD" => Some(self.cwd.clone()),
            n if n.chars().all(|c| c.is_ascii_digit()) => {
                let idx: usize = n.parse().ok()?;
                if idx == 0 {
                    Some(self.script_name.clone())
                } else if let Some(v) = self.positional.get(idx - 1) {
                    Some(v.clone())
                } else {
                    // The script may be invoked with arguments: model
                    // `$n` as a stable symbol per index.
                    if let Some(v) = self.lazy_positional.get(&idx) {
                        return Some(v.clone());
                    }
                    let v = self.fresh_sym(Regex::any_line(), &format!("${idx}"));
                    self.lazy_positional.insert(idx, v.clone());
                    Some(v)
                }
            }
            n => self.vars.get(n).cloned(),
        }
    }

    /// Refines symbol `id` by intersecting its constraint with `with`
    /// in every value in the world. Returns false if the world becomes
    /// infeasible.
    pub fn refine_sym(&mut self, id: SymId, with: &Regex) -> bool {
        let mut ok = true;
        // Refinement rewrites values in place, so these go through the
        // COW write path (copying each container once if shared).
        for v in self.vars.to_mut().values_mut() {
            ok &= v.refine_sym(id, with);
            v.concretize();
        }
        for v in self.positional.to_mut().iter_mut() {
            ok &= v.refine_sym(id, with);
            v.concretize();
        }
        for v in self.lazy_positional.to_mut().values_mut() {
            ok &= v.refine_sym(id, with);
            v.concretize();
        }
        ok &= self.script_name.refine_sym(id, with);
        self.script_name.concretize();
        ok &= self.cwd.refine_sym(id, with);
        self.cwd.concretize();
        if let Some(c) = self.capture.as_mut() {
            ok &= c.refine_sym(id, with);
            c.concretize();
        }
        ok
    }

    /// Shifts positional parameters left by `n` (the `shift` builtin),
    /// including lazily-materialized ones.
    pub fn shift_positional(&mut self, n: usize) {
        let from_known = n.min(self.positional.len());
        self.positional.to_mut().drain(..from_known);
        let old = std::mem::take(&mut self.lazy_positional);
        for (idx, v) in old.iter() {
            if *idx > n {
                self.lazy_positional.insert(idx - n, v.clone());
            }
        }
    }

    /// Records a path-condition conjunct with no structured source
    /// (kind [`TrailKind::Assumption`], no span).
    pub fn assume(&mut self, condition: impl Into<String>) {
        self.trail.push(TrailEntry::new(
            TrailKind::Assumption,
            Span::new(0, 0, 0),
            condition,
        ));
    }

    /// Records a typed path-condition conjunct anchored at `span`.
    pub fn assume_at(&mut self, span: Span, kind: TrailKind, condition: impl Into<String>) {
        self.trail.push(TrailEntry::new(kind, span, condition));
    }

    /// Reports a diagnostic on this path, attaching structured
    /// provenance (witness world id + typed trail). The trail is
    /// *shared* with this world — an O(1) pointer copy, not a
    /// materialized duplicate; the flat path-condition strings are
    /// derived from it on demand by [`Diagnostic::path_condition`].
    pub fn report(&mut self, mut diag: Diagnostic) {
        diag.provenance = Some(Provenance {
            world: self.id,
            trail: self.trail.clone(),
        });
        self.diags.push(diag);
    }

    /// The file-system base anchored to string symbol `id` (allocated on
    /// first use).
    pub fn base_for_sym(&mut self, id: SymId) -> SymBase {
        if let Some(&b) = self.sym_bases.get(&id) {
            return b;
        }
        let b = self.next_base;
        self.next_base += 1;
        self.sym_bases.insert(id, b);
        b
    }

    /// Resolves a path-valued symbolic string to a file-system key, if
    /// the value has a trackable identity.
    pub fn fs_key(&mut self, value: &SymStr) -> Option<FsKey> {
        if let Some(text) = value.as_literal() {
            if text.is_empty() {
                return None;
            }
            if text.starts_with('/') {
                return FsKey::absolute(&text);
            }
            // Relative: anchor at the cwd.
            return match self.cwd.clone().as_literal() {
                Some(cwd) => FsKey::absolute(&join(&cwd, &text)),
                None => match self.cwd.as_single_sym() {
                    Some((cwd_id, _)) => {
                        let base = self.base_for_sym(cwd_id);
                        FsKey::symbolic_with(base, &normalize_lexical(&text))
                    }
                    None => None,
                },
            };
        }
        match value.segs.as_slice() {
            [Seg::Sym { id, .. }] => {
                let base = self.base_for_sym(*id);
                Some(FsKey::symbolic(base))
            }
            [Seg::Sym { id, .. }, Seg::Lit(suffix)] if suffix.starts_with('/') => {
                let base = self.base_for_sym(*id);
                FsKey::symbolic_with(base, &normalize_lexical(suffix))
            }
            _ => None,
        }
    }

    /// Appends to the capture buffer (stdout during command
    /// substitution).
    pub fn emit_stdout(&mut self, chunk: SymStr) {
        if let Some(buf) = self.capture.as_mut() {
            *buf = buf.concat(&chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_world_shape() {
        let mut w = World::initial();
        assert!(w.param("0").unwrap().may_be("/home/u/run.sh"));
        assert!(w.param("0").unwrap().may_be("run.sh"));
        assert!(!w.param("0").unwrap().may_be_empty());
        assert!(w.param("PWD").unwrap().may_be("/"));
        assert_eq!(w.param("#").unwrap().as_literal().as_deref(), Some("0"));
        assert_eq!(w.param("UNSET"), None);
    }

    #[test]
    fn positional_params() {
        let mut w = World::initial();
        w.positional = vec![SymStr::lit("a"), SymStr::lit("b")].into();
        assert_eq!(w.param("1").unwrap().as_literal().as_deref(), Some("a"));
        assert_eq!(w.param("2").unwrap().as_literal().as_deref(), Some("b"));
        // Beyond the known arguments, `$3` is a stable fresh symbol.
        let three = w.param("3").unwrap();
        assert!(three.as_literal().is_none());
        assert_eq!(w.param("3").unwrap(), three);
        assert_eq!(w.param("#").unwrap().as_literal().as_deref(), Some("2"));
        assert_eq!(w.param("*").unwrap().as_literal().as_deref(), Some("a b"));
    }

    #[test]
    fn refine_propagates_everywhere() {
        let mut w = World::initial();
        let v = w.fresh_sym(Regex::parse_must("(/|/home)"), "$p");
        let (id, _) = v.as_single_sym().unwrap();
        w.set_var("A", v.clone());
        w.set_var("B", SymStr::lit("x-").concat(&v));
        assert!(w.refine_sym(id, &Regex::lit("/").complement()));
        assert_eq!(
            w.get_var("A").unwrap().as_literal().as_deref(),
            Some("/home")
        );
        assert_eq!(
            w.get_var("B").unwrap().as_literal().as_deref(),
            Some("x-/home")
        );
    }

    #[test]
    fn refine_to_unsat_reports_infeasible() {
        let mut w = World::initial();
        let v = w.fresh_sym(Regex::lit("only"), "$p");
        let (id, _) = v.as_single_sym().unwrap();
        w.set_var("A", v);
        assert!(!w.refine_sym(id, &Regex::lit("other")));
    }

    #[test]
    fn fs_key_literal_paths() {
        let mut w = World::initial();
        let k = w.fs_key(&SymStr::lit("/etc/passwd")).unwrap();
        assert_eq!(k.to_string(), "/etc/passwd");
        assert_eq!(w.fs_key(&SymStr::lit("")), None);
    }

    #[test]
    fn fs_key_relative_joins_cwd() {
        let mut w = World::initial();
        w.cwd = SymStr::lit("/work");
        let k = w.fs_key(&SymStr::lit("sub/file")).unwrap();
        assert_eq!(k.to_string(), "/work/sub/file");
        // Symbolic cwd anchors at its base.
        let mut w2 = World::initial();
        let k2 = w2.fs_key(&SymStr::lit("file")).unwrap();
        assert!(k2.to_string().contains("sym"));
    }

    #[test]
    fn fs_key_symbolic_with_suffix() {
        let mut w = World::initial();
        let p = w.fresh_sym(Regex::any_line(), "$1");
        let val = p.concat(&SymStr::lit("/config"));
        let k = w.fs_key(&val).unwrap();
        assert!(k.to_string().ends_with("/config"));
        // Same symbol → same base.
        let k2 = w.fs_key(&p).unwrap();
        assert!(k2.is_ancestor_or_equal(&k));
    }

    #[test]
    fn capture_accumulates() {
        let mut w = World::initial();
        w.capture = Some(SymStr::empty());
        w.emit_stdout(SymStr::lit("a"));
        w.emit_stdout(SymStr::lit("b\n"));
        assert_eq!(w.capture.unwrap().as_literal().as_deref(), Some("ab\n"));
    }

    #[test]
    fn exit_status_negation() {
        assert_eq!(ExitStatus::Zero.negate(), ExitStatus::NonZero);
        assert_eq!(ExitStatus::NonZero.negate(), ExitStatus::Zero);
        assert_eq!(ExitStatus::Unknown.negate(), ExitStatus::Unknown);
    }
}
