//! Exploration accounting: exact fork/prune/cap counters and cap-hit
//! records.
//!
//! The engine threads an [`EngineStats`] through every world-set
//! transformation via interior mutability (all `Engine` methods take
//! `&self`). Counting happens only at *primitive* branch sites — places
//! where one world maps to `n` successor worlds without recursing
//! through `exec_items` — so the balance
//!
//! ```text
//! terminal_worlds = 1 + forks − pruned − cap_dropped
//! ```
//!
//! holds exactly by construction (each transition is counted once, at
//! its origin). Composition sites (lists, pipelines, loops, captures)
//! preserve world counts and are deliberately not instrumented.

use std::cell::{Cell, RefCell};
use std::fmt;

/// Which exploration bound was hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapReason {
    /// The live world set exceeded `max_worlds` and was truncated.
    MaxWorlds,
    /// Word expansion produced more than `max_worlds` (world, fields)
    /// pairs and was truncated.
    Expansion,
    /// A loop ran past `loop_bound` iterations and was widened (havoc);
    /// no worlds are dropped, but precision is lost.
    LoopBound,
    /// The symbolic-step budget ([`crate::analyze::AnalysisOptions::fuel`])
    /// ran out; statements past the exhaustion point were not analyzed.
    Fuel,
    /// The wall-clock budget
    /// ([`crate::analyze::AnalysisOptions::deadline`]) expired;
    /// statements past the exhaustion point were not analyzed.
    Deadline,
    /// A `relang` DFA construction hit its state cap and degraded to a
    /// top-approximation (see [`shoal_relang::ApproxReason`]); some
    /// constraint answers are over-approximate.
    DfaStates,
}

impl CapReason {
    /// Stable machine-readable name (`max_worlds`, `expansion`,
    /// `loop_bound`, `fuel`, `deadline`, `dfa_states`).
    pub fn as_str(self) -> &'static str {
        match self {
            CapReason::MaxWorlds => "max_worlds",
            CapReason::Expansion => "expansion",
            CapReason::LoopBound => "loop_bound",
            CapReason::Fuel => "fuel",
            CapReason::Deadline => "deadline",
            CapReason::DfaStates => "dfa_states",
        }
    }
}

impl fmt::Display for CapReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One place where exploration hit a bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapHit {
    /// Which bound.
    pub reason: CapReason,
    /// Source line of the capped construct.
    pub line: u32,
    /// Worlds dropped from exploration here (0 for loop widening, which
    /// keeps the worlds but havocs their state).
    pub dropped: usize,
    /// How many times this site hit the bound.
    pub hits: usize,
}

/// Per-run exploration counters, updated through `&self`.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Worlds created beyond the first at branch sites.
    pub forks: Cell<u64>,
    /// Infeasible branch candidates discarded by refinement.
    pub pruned: Cell<u64>,
    /// Worlds dropped at `max_worlds` caps.
    pub cap_dropped: Cell<u64>,
    /// Peak size of any live world set processed at one point.
    pub peak_live: Cell<usize>,
    /// Where exploration hit bounds, deduplicated by (reason, line).
    pub cap_hits: RefCell<Vec<CapHit>>,
}

impl EngineStats {
    /// Observes a live world-set size, updating the peak.
    #[inline]
    pub fn note_live(&self, n: usize) {
        if n > self.peak_live.get() {
            self.peak_live.set(n);
            shoal_obs::gauge_max("engine.peak_live_worlds", n as u64);
        }
    }

    /// Records a bound hit (merging repeats at the same site) and emits
    /// a `cap_hit` trace event.
    pub fn note_cap(&self, reason: CapReason, line: u32, dropped: usize) {
        self.cap_dropped.set(self.cap_dropped.get() + dropped as u64);
        let mut hits = self.cap_hits.borrow_mut();
        match hits.iter_mut().find(|h| h.reason == reason && h.line == line) {
            Some(h) => {
                h.dropped += dropped;
                h.hits += 1;
            }
            None => hits.push(CapHit {
                reason,
                line,
                dropped,
                hits: 1,
            }),
        }
        shoal_obs::counter_add("engine.cap_hits", 1);
        shoal_obs::counter_add("engine.cap_dropped", dropped as u64);
        shoal_obs::event!(
            "cap_hit",
            reason = reason.as_str(),
            line = line,
            dropped = dropped
        );
    }

    /// Drains the cap-hit records (for the final report).
    pub fn take_cap_hits(&self) -> Vec<CapHit> {
        std::mem::take(&mut *self.cap_hits.borrow_mut())
    }
}

/// Optional per-run profile attached to an `AnalysisReport` (the
/// `--profile` view): exact peak worlds, per-phase wall time, and the
/// branch accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Parsing time (µs); 0 when analysis started from an AST.
    pub parse_us: u64,
    /// Symbolic execution time (µs).
    pub exec_us: u64,
    /// Idempotence-pass time (µs).
    pub idempotence_us: u64,
    /// Diagnostic dedup/sort time (µs).
    pub report_us: u64,
    /// End-to-end time (µs).
    pub total_us: u64,
    /// Exact peak size of the live world set.
    pub peak_live_worlds: usize,
    /// Worlds created beyond the first at branch sites.
    pub forks: u64,
    /// Infeasible branch candidates pruned by refinement.
    pub worlds_pruned: u64,
    /// Worlds dropped at `max_worlds` caps.
    pub cap_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_hits_merge_by_site() {
        let s = EngineStats::default();
        s.note_cap(CapReason::MaxWorlds, 3, 10);
        s.note_cap(CapReason::MaxWorlds, 3, 5);
        s.note_cap(CapReason::LoopBound, 3, 0);
        let hits = s.take_cap_hits();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].dropped, 15);
        assert_eq!(hits[0].hits, 2);
        assert_eq!(s.cap_dropped.get(), 15);
        assert!(s.take_cap_hits().is_empty());
    }

    #[test]
    fn peak_live_is_monotone() {
        let s = EngineStats::default();
        s.note_live(3);
        s.note_live(1);
        assert_eq!(s.peak_live.get(), 3);
    }
}
