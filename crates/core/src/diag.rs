//! Diagnostics: what the analyzer reports and how.
//!
//! Each diagnostic carries a stable code (for tooling and the
//! experiment harness), a severity, the source span, and — because the
//! engine explores *all* executions — an optional description of the
//! execution path on which the problem arises ("when `$STEAMROOT`
//! expands to the empty string…"). Witnesses are what make
//! semantics-driven findings actionable where syntactic lint findings
//! are noise (§2).

use crate::provenance::Provenance;
use shoal_shparse::Span;
use std::fmt;

/// Stable diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagCode {
    /// A deletion may hit `/` or everything under it (Figs. 1, 3).
    DangerousDelete,
    /// A command's precondition is unsatisfiable on some path — it
    /// always fails there (§4 `rm $1; cat $1/config`).
    AlwaysFails,
    /// A pipeline stage's output language is empty (Fig. 5).
    DeadPipe,
    /// A stage's input type violates its bound (`sort -g` on words).
    StreamTypeMismatch,
    /// A variable may be unset/empty where that changes meaning.
    MaybeEmptyExpansion,
    /// Behavior depends on the platform (§5 "Correctness").
    PlatformDependent,
    /// The same path is created and deleted inconsistently across a
    /// path (idempotence-style trouble, §4 "Incorrectness criteria").
    IdempotenceRisk,
    /// The engine hit an exploration limit; results are incomplete.
    AnalysisIncomplete,
    /// A `verify` policy violation (§5 "Security").
    PolicyViolation,
    /// A region of the script failed to parse and was skipped by error
    /// recovery; findings cover only the statements that parsed.
    ParsePartial,
}

impl DiagCode {
    /// All codes, in a fixed order (SARIF rule table, docs).
    pub fn all() -> &'static [DiagCode] {
        &[
            DiagCode::DangerousDelete,
            DiagCode::AlwaysFails,
            DiagCode::DeadPipe,
            DiagCode::StreamTypeMismatch,
            DiagCode::MaybeEmptyExpansion,
            DiagCode::PlatformDependent,
            DiagCode::IdempotenceRisk,
            DiagCode::AnalysisIncomplete,
            DiagCode::PolicyViolation,
            DiagCode::ParsePartial,
        ]
    }

    /// One-line rule description (SARIF `shortDescription`).
    pub fn summary(self) -> &'static str {
        match self {
            DiagCode::DangerousDelete => {
                "a deletion may hit / or everything under it on some execution"
            }
            DiagCode::AlwaysFails => {
                "a command's precondition is unsatisfiable on some path — it always fails there"
            }
            DiagCode::DeadPipe => "a pipeline stage's output language is empty",
            DiagCode::StreamTypeMismatch => "a stage's input type violates its bound",
            DiagCode::MaybeEmptyExpansion => {
                "a variable may be unset or empty where that changes meaning"
            }
            DiagCode::PlatformDependent => "behavior depends on the platform",
            DiagCode::IdempotenceRisk => {
                "re-running the script behaves differently from the first run"
            }
            DiagCode::AnalysisIncomplete => {
                "the engine hit an exploration limit; results are incomplete"
            }
            DiagCode::PolicyViolation => "a verify policy violation",
            DiagCode::ParsePartial => {
                "a region failed to parse and was skipped; findings cover only the parsed part"
            }
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagCode::DangerousDelete => "dangerous-delete",
            DiagCode::AlwaysFails => "always-fails",
            DiagCode::DeadPipe => "dead-pipe",
            DiagCode::StreamTypeMismatch => "stream-type-mismatch",
            DiagCode::MaybeEmptyExpansion => "maybe-empty-expansion",
            DiagCode::PlatformDependent => "platform-dependent",
            DiagCode::IdempotenceRisk => "idempotence-risk",
            DiagCode::AnalysisIncomplete => "analysis-incomplete",
            DiagCode::PolicyViolation => "policy-violation",
            DiagCode::ParsePartial => "parse-partial",
        };
        write!(f, "{s}")
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (e.g. analysis limits).
    Note,
    /// Likely a bug on some executions.
    Warning,
    /// Catastrophic or certain on some executions.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{s}")
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity.
    pub severity: Severity,
    /// Where in the script.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// For [`DiagCode::AnalysisIncomplete`]: which exploration bound was
    /// hit, machine-readable (`None` for non-cap incompleteness such as
    /// `eval` or malformed annotations).
    pub cap_reason: Option<crate::stats::CapReason>,
    /// Structured witness: the world that saw the problem and its typed
    /// constraint trail ([`crate::provenance`]). `None` for findings
    /// that are not tied to a particular execution.
    pub provenance: Option<Provenance>,
    /// Which checker or command spec fired (e.g. `"checker:delete"`,
    /// `"spec:mkdir"`).
    pub origin: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with an empty path description.
    pub fn new(code: DiagCode, severity: Severity, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
            cap_reason: None,
            provenance: None,
            origin: None,
        }
    }

    /// The execution path on which the finding happens, as flat
    /// condition strings. Derived on demand from the structured
    /// [`Provenance`] trail (the trail is shared with the witness world;
    /// no second copy is stored on the diagnostic).
    pub fn path_condition(&self) -> Vec<String> {
        self.provenance
            .as_ref()
            .map(|p| p.trail.iter().map(|t| t.what.clone()).collect())
            .unwrap_or_default()
    }

    /// Tags the diagnostic with the exploration bound that caused it.
    pub fn with_cap(mut self, reason: crate::stats::CapReason) -> Self {
        self.cap_reason = Some(reason);
        self
    }

    /// Tags the diagnostic with the checker/spec that produced it.
    pub fn with_origin(mut self, origin: impl Into<String>) -> Self {
        self.origin = Some(origin.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] {}",
            self.span, self.severity, self.code, self.message
        )?;
        if let Some(reason) = self.cap_reason {
            write!(
                f,
                " [analysis-incomplete: {} at line {}]",
                reason.as_str(),
                self.span.line
            )?;
        }
        let path_condition = self.path_condition();
        if !path_condition.is_empty() {
            write!(
                f,
                "\n    on the path where {}",
                path_condition.join(" and ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path() {
        use crate::provenance::{TrailEntry, TrailKind};
        let mut d = Diagnostic::new(
            DiagCode::DangerousDelete,
            Severity::Error,
            Span::new(0, 10, 4),
            "rm -fr may delete everything under /",
        );
        d.provenance = Some(Provenance {
            world: 0,
            trail: [TrailEntry::new(
                TrailKind::Assumption,
                Span::new(0, 0, 0),
                "$STEAMROOT = \"\"",
            )]
            .into_iter()
            .collect(),
        });
        let text = d.to_string();
        assert!(text.contains("line 4"));
        assert!(text.contains("dangerous-delete"));
        assert!(text.contains("$STEAMROOT"));
    }

    #[test]
    fn display_renders_cap_reason() {
        let d = Diagnostic::new(
            DiagCode::AnalysisIncomplete,
            Severity::Note,
            Span::new(0, 5, 7),
            "exploration capped; dropping 3 world(s)",
        )
        .with_cap(crate::stats::CapReason::MaxWorlds);
        let text = d.to_string();
        assert!(
            text.contains("[analysis-incomplete: max_worlds at line 7]"),
            "cap reason must be visible in text output, got: {text}"
        );
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
