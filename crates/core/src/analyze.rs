//! The public analysis API.
//!
//! [`analyze_source`] parses and analyzes a script, returning an
//! [`AnalysisReport`] with deduplicated diagnostics and exploration
//! statistics. Options control the exploration budget and the ablation
//! switches used by the evaluation harness (E9 measures the effect of
//! disabling concrete pruning; E6 compares monomorphic and polymorphic
//! stream types through `shoal-streamty` directly).

use crate::diag::{DiagCode, Diagnostic};
use crate::engine::Engine;
use crate::provenance::WorldTree;
use crate::stats::{CapHit, ProfileReport};
use crate::world::World;
use shoal_shparse::{parse_script, parse_script_recovering, ParseError, Script};
use std::time::Instant;

/// Analysis configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisOptions {
    /// Loop unrolling bound.
    pub loop_bound: usize,
    /// Maximum simultaneously-live worlds.
    pub max_worlds: usize,
    /// Run the stream-type checker over pipelines.
    pub enable_stream_types: bool,
    /// Refine symbol constraints at forks and prune infeasible worlds
    /// (§3 "pruning via concrete state whenever possible"). Disabling
    /// this is the E9 ablation.
    pub enable_pruning: bool,
    /// Attach a [`ProfileReport`] (per-phase wall time plus exploration
    /// counters) to the report.
    pub profile: bool,
    /// Symbolic-step budget: each statement executed over `n` live
    /// worlds costs `n` fuel. When it runs out the engine stops
    /// executing further statements, keeps every diagnostic found so
    /// far, and records a [`crate::stats::CapReason::Fuel`] cap hit.
    /// `None` (the default) means unlimited.
    pub fuel: Option<u64>,
    /// Wall-clock budget, checked by a cheap poll counter (one
    /// `Instant::now()` per 64 budget charges). Exhaustion degrades
    /// exactly like fuel, with [`crate::stats::CapReason::Deadline`].
    /// `None` (the default) means unlimited.
    pub deadline: Option<std::time::Duration>,
    /// Record a coverage/precision-loss map
    /// ([`AnalysisReport::coverage`]): which commands had specs, where
    /// the analysis degraded to ⊤ and why, which checkers fired. Off by
    /// default; the disabled path records nothing, allocates nothing,
    /// and reads no clocks (the dark-path discipline).
    pub audit: bool,
    /// Route the analysis through the statement-level incremental
    /// engine ([`crate::incr`]). A *strategy* switch, not a semantic
    /// one: the incremental path is required to produce a report body
    /// byte-identical to the cold path, so — like `profile` and
    /// `audit` — it is excluded from [`AnalysisOptions::canonical`]
    /// and never forks the daemon cache keyspace.
    pub incremental: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            loop_bound: 2,
            max_worlds: 64,
            enable_stream_types: true,
            enable_pruning: true,
            profile: false,
            fuel: None,
            deadline: None,
            audit: false,
            incremental: false,
        }
    }
}

impl AnalysisOptions {
    /// The canonical fingerprint string of every option that can change
    /// an [`AnalysisReport`]'s *content* — one component of the JIT
    /// daemon's content-addressed cache key. Two option values with
    /// equal canonical strings must produce byte-identical report
    /// bodies for the same source and spec database.
    ///
    /// `profile` is deliberately excluded: it only attaches wall-clock
    /// timings, which are not part of the serialized report body (and
    /// would be meaningless served from a cache — the daemon client
    /// runs profiled requests in-process instead). `audit` is excluded
    /// for the same reason: the coverage map is a side channel that
    /// never enters the serialized report body, so the daemon can audit
    /// every miss without forking the cache keyspace. `incremental` is
    /// excluded because it is a strategy switch with a byte-identity
    /// obligation: the incremental engine must produce the same report
    /// body the cold engine would, so caching the two under one key is
    /// correct by construction.
    ///
    /// A `deadline` *is* part of the key even though its effect is
    /// timing-dependent: a cached deadline-capped report replays the
    /// first run's verdict, which is the documented semantics (the cap
    /// hit is marked machine-readably either way).
    pub fn canonical(&self) -> String {
        format!(
            "loop_bound={};max_worlds={};stream_types={};pruning={};fuel={};deadline_ns={}",
            self.loop_bound,
            self.max_worlds,
            self.enable_stream_types,
            self.enable_pruning,
            self.fuel.map(|f| f.to_string()).unwrap_or_else(|| "-".into()),
            self.deadline
                .map(|d| d.as_nanos().to_string())
                .unwrap_or_else(|| "-".into()),
        )
    }
}

/// The result of analyzing one script.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Deduplicated diagnostics, ordered by line then code.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of execution paths that reached the end of the script.
    pub paths_completed: usize,
    /// Exact peak size of the live world set during exploration
    /// (tracked by the engine's branch accounting).
    pub worlds_explored: usize,
    /// Number of terminal worlds — the old meaning of
    /// `worlds_explored`, kept under its proper name.
    pub terminal_worlds: usize,
    /// True when exploration hit a cap somewhere.
    pub incomplete: bool,
    /// Where exploration hit bounds (machine-readable: which cap,
    /// which line, how many worlds lost). Empty when exploration was
    /// exhaustive.
    pub cap_hits: Vec<CapHit>,
    /// Per-phase timings and exploration counters; present when
    /// [`AnalysisOptions::profile`] was set.
    pub profile: Option<ProfileReport>,
    /// The explored world tree (provenance layer): one node per world,
    /// with fork site, added constraint, and outcome. Its terminal-leaf
    /// count equals [`AnalysisReport::terminal_worlds`].
    pub world_tree: WorldTree,
    /// True when the script was parsed with error recovery and some
    /// statements were skipped over syntax errors
    /// ([`analyze_source_resilient`]); the skipped regions appear as
    /// [`DiagCode::ParsePartial`] notes.
    pub parse_partial: bool,
    /// The per-script coverage/precision-loss map; present when
    /// [`AnalysisOptions::audit`] was set. Like `profile`, this is a
    /// side channel: it is never part of the serialized report body.
    pub coverage: Option<shoal_obs::audit::CoverageMap>,
}

impl AnalysisReport {
    /// Diagnostics of a given code.
    pub fn with_code(&self, code: DiagCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// True when a diagnostic with this code was reported.
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

/// Analyzes a parsed script (no annotations).
pub fn analyze_script(script: &Script, opts: AnalysisOptions) -> AnalysisReport {
    analyze_script_annotated(script, opts, crate::annotations::Annotations::default())
}

/// Analyzes a parsed script with inline annotations in effect.
pub fn analyze_script_annotated(
    script: &Script,
    opts: AnalysisOptions,
    annotations: crate::annotations::Annotations,
) -> AnalysisReport {
    let (engine, initial) = prologue(opts, annotations);
    let t_start = Instant::now();
    let worlds = {
        let _span = shoal_obs::span!("exec_items");
        engine.exec_items(vec![initial], &script.items)
    };
    let exec_us = t_start.elapsed().as_micros() as u64;
    // A relang DFA construction that hit its state cap during this
    // analysis over-approximated some constraint answer; drained here
    // so finalization can surface it (the incremental engine instead
    // drains per statement and accumulates across replays).
    let approx = shoal_relang::take_approx_hits();
    finalize(&engine, worlds, approx, t_start, exec_us)
}

/// Sets up one analysis: clears stale thread-local approximation
/// events, builds the engine, and constrains the initial world with
/// `#@ var NAME : TYPE` annotations. Shared verbatim between the cold
/// path above and the incremental engine ([`crate::incr`]) — the
/// byte-identity obligation starts here.
pub(crate) fn prologue(
    opts: AnalysisOptions,
    annotations: crate::annotations::Annotations,
) -> (Engine, World) {
    // Stale approximation events from earlier analyses on this thread
    // must not be attributed to this report.
    let _ = shoal_relang::take_approx_hits();
    let mut engine = Engine::new(opts);
    let mut initial = World::initial();
    // `#@ var NAME : TYPE` constrains the initial environment.
    let var_annotations: Vec<(String, shoal_relang::Regex)> = annotations
        .vars
        .iter()
        .map(|(n, t)| (n.clone(), t.clone()))
        .collect();
    engine.annotations = annotations;
    for (name, ty) in var_annotations {
        let v = initial.fresh_sym(ty, &format!("${name} (annotated)"));
        initial.set_var(&name, v);
    }
    (engine, initial)
}

/// Turns a finished world set into an [`AnalysisReport`]: idempotence
/// pass, world-tree closing, deduplication, deterministic ordering,
/// cap accounting, and audit finalization. Shared verbatim between the
/// cold and incremental paths, which is what makes the incremental
/// engine's byte-identity guarantee hold by construction: once the
/// world set, tree, stats, audit state, and approximation events agree,
/// the rendered report must too.
pub(crate) fn finalize(
    engine: &Engine,
    mut worlds: Vec<World>,
    approx: Vec<shoal_relang::ApproxReason>,
    t_start: Instant,
    exec_us: u64,
) -> AnalysisReport {
    let opts_profile = engine.opts.profile;
    // Request-scoped tracing (the daemon's telemetry plane): charge
    // the already-measured durations to the active trace, if any —
    // no extra clock reads, one thread-local check when disabled.
    shoal_obs::trace::phase_add("symexec", exec_us);
    let t_idem = Instant::now();
    // Idempotence pass (§4, CoLiS criterion): a path succeeded only
    // because some location was in state S initially, and the script
    // left it in a different state — so an immediate second run of the
    // same path fails at that command.
    for w in worlds.iter_mut() {
        let mut findings = Vec::new();
        for (key, assumed, span) in &w.fragile_assumptions {
            let now = w.fs.lookup(key);
            let flipped = match (assumed, now) {
                (shoal_symfs::state::NodeState::Absent, Some(s)) if s.exists() => true,
                (a, Some(shoal_symfs::state::NodeState::Absent)) if a.exists() => true,
                _ => false,
            };
            if flipped {
                findings.push(Diagnostic::new(
                    DiagCode::IdempotenceRisk,
                    crate::diag::Severity::Warning,
                    *span,
                    format!(
                        "not idempotent: this command succeeds only while {key} is {assumed},                          but the script leaves it {} — a second run fails here",
                        now.map(|s| s.to_string()).unwrap_or_else(|| "changed".into())
                    ),
                )
                .with_origin("checker:idempotence"));
            }
        }
        for d in findings {
            w.report(d);
        }
    }
    let worlds = worlds;
    let idempotence_us = t_idem.elapsed().as_micros() as u64;
    let t_report = Instant::now();
    let paths_completed = worlds.len();
    // Close the world tree: every surviving world is a terminal leaf,
    // so the tree's terminal-leaf count reconciles exactly with
    // `terminal_worlds`.
    {
        let mut tree = engine.tree.borrow_mut();
        for w in &worlds {
            tree.mark_terminal(w.id);
        }
    }
    let world_tree = engine.tree.replace(WorldTree::new());
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut incomplete = false;
    for w in &worlds {
        for d in &w.diags {
            if d.code == DiagCode::AnalysisIncomplete {
                incomplete = true;
            }
            // Deduplicate by (span, code, message) keeping the first
            // (whose path condition is usually the shortest).
            let dup = diagnostics
                .iter()
                .any(|e| e.code == d.code && e.span == d.span && e.message == d.message);
            if !dup {
                diagnostics.push(d.clone());
            }
        }
    }
    // A relang DFA construction that hit its state cap during this
    // analysis over-approximated some constraint answer; surface it as
    // a machine-readable cap hit plus an incompleteness note.
    if !approx.is_empty() {
        engine
            .stats
            .note_cap(crate::stats::CapReason::DfaStates, 0, 0);
        incomplete = true;
        diagnostics.push(
            Diagnostic::new(
                DiagCode::AnalysisIncomplete,
                crate::diag::Severity::Note,
                shoal_shparse::Span::new(0, 0, 0),
                format!(
                    "{} regular-language operation(s) hit the DFA state cap ({}) and were \
                     over-approximated; some answers may be imprecise",
                    approx.len(),
                    shoal_relang::dfa_state_cap(),
                ),
            )
            .with_cap(crate::stats::CapReason::DfaStates)
            .with_origin("relang:state_cap"),
        );
    }
    // Deterministic order regardless of world-exploration order:
    // full span, then code, then message.
    diagnostics.sort_by(|a, b| {
        (a.span.line, a.span.start, a.span.end, a.code, &a.message).cmp(&(
            b.span.line,
            b.span.start,
            b.span.end,
            b.code,
            &b.message,
        ))
    });
    let report_us = t_report.elapsed().as_micros() as u64;
    shoal_obs::trace::phase_add("report", idempotence_us.saturating_add(report_us));
    let stats = &engine.stats;
    let peak_live = stats.peak_live.get().max(1);
    shoal_obs::event!(
        "join",
        site = "analyze",
        terminal_worlds = paths_completed,
        peak_live = peak_live,
        forks = stats.forks.get(),
        pruned = stats.pruned.get(),
        cap_dropped = stats.cap_dropped.get()
    );
    shoal_obs::counter_add("analyze.runs", 1);
    let profile = opts_profile.then(|| ProfileReport {
        parse_us: 0,
        exec_us,
        idempotence_us,
        report_us,
        total_us: t_start.elapsed().as_micros() as u64,
        peak_live_worlds: peak_live,
        forks: stats.forks.get(),
        worlds_pruned: stats.pruned.get(),
        cap_dropped: stats.cap_dropped.get(),
    });
    let cap_hits = stats.take_cap_hits();
    // A cap hit always marks the report incomplete, even when no world
    // survived to carry the diagnostic (e.g. budget exhaustion after
    // every world was pruned).
    let incomplete = incomplete || !cap_hits.is_empty();
    // Audit finalization (audit-off: the recorder was never touched and
    // this whole block is skipped — no allocation, no clock reads).
    let coverage = engine.opts.audit.then(|| {
        let mut rec = engine.audit.replace(crate::audit::AuditRecorder::default());
        for hit in &approx {
            rec.record_loss(shoal_obs::audit::LossCause::DfaCap, hit.site().to_string(), 1);
        }
        rec.finish(&diagnostics)
    });
    AnalysisReport {
        diagnostics,
        paths_completed,
        worlds_explored: peak_live,
        terminal_worlds: paths_completed,
        incomplete,
        cap_hits,
        profile,
        world_tree,
        parse_partial: false,
        coverage,
    }
}

/// Parses and analyzes shell source with default options.
///
/// # Errors
///
/// Returns the parse error if the source is not valid shell.
pub fn analyze_source(src: &str) -> Result<AnalysisReport, ParseError> {
    analyze_source_with(src, AnalysisOptions::default())
}

/// Parses and analyzes shell source with explicit options.
///
/// # Errors
///
/// Returns the parse error if the source is not valid shell.
pub fn analyze_source_with(src: &str, opts: AnalysisOptions) -> Result<AnalysisReport, ParseError> {
    if opts.incremental {
        // Strategy switch: the incremental engine owns its own parse
        // timing and annotation recovery, and is obligated to return a
        // byte-identical report body.
        return crate::incr::analyze_source_incremental(src, opts);
    }
    let t_parse = Instant::now();
    let script = {
        let _span = shoal_obs::span!("parse");
        parse_script(src)?
    };
    let parse_us = t_parse.elapsed().as_micros() as u64;
    shoal_obs::trace::phase_add("parse", parse_us);
    let attach_parse = |mut report: AnalysisReport| {
        if let Some(p) = report.profile.as_mut() {
            p.parse_us = parse_us;
            p.total_us += parse_us;
        }
        report
    };
    match crate::annotations::parse_annotations(src) {
        Ok(annotations) => Ok(attach_parse(analyze_script_annotated(&script, opts, annotations))),
        Err(e) => {
            // A malformed annotation must not hide the analysis; report
            // it as a note and continue un-annotated.
            let mut report = analyze_script(&script, opts);
            report.diagnostics.insert(
                0,
                Diagnostic::new(
                    DiagCode::AnalysisIncomplete,
                    crate::diag::Severity::Note,
                    shoal_shparse::Span::new(0, 0, e.line),
                    e.to_string(),
                ),
            );
            Ok(attach_parse(report))
        }
    }
}

/// Parses with error recovery and analyzes whatever parsed; this entry
/// point never fails. Each syntax error becomes a
/// [`DiagCode::ParsePartial`] note at its source span and the report is
/// marked [`AnalysisReport::parse_partial`], so one malformed statement
/// does not hide findings in the healthy remainder (the degradation
/// invariant behind `shoal scan`).
pub fn analyze_source_resilient(src: &str, opts: AnalysisOptions) -> AnalysisReport {
    let t_parse = Instant::now();
    let recovered = {
        let _span = shoal_obs::span!("parse_recovering");
        parse_script_recovering(src)
    };
    let parse_us = t_parse.elapsed().as_micros() as u64;
    shoal_obs::trace::phase_add("parse", parse_us);
    let annotations = crate::annotations::parse_annotations(src).unwrap_or_default();
    let mut report = analyze_script_annotated(&recovered.script, opts, annotations);
    if let Some(p) = report.profile.as_mut() {
        p.parse_us = parse_us;
        p.total_us += parse_us;
    }
    if !recovered.diagnostics.is_empty() {
        report.parse_partial = true;
        // Each bridged syntax error is a precision loss: statements in
        // the gap were never analyzed.
        if let Some(cov) = report.coverage.as_mut() {
            for d in &recovered.diagnostics {
                cov.add_loss(
                    shoal_obs::audit::LossCause::ParsePartial,
                    &format!("line {}", d.span.line),
                    1,
                );
            }
        }
        for d in &recovered.diagnostics {
            report.diagnostics.push(
                Diagnostic::new(
                    DiagCode::ParsePartial,
                    crate::diag::Severity::Note,
                    d.span,
                    format!(
                        "syntax error: {}; skipped to the next statement boundary",
                        d.message
                    ),
                )
                .with_origin("parser:recovery"),
            );
        }
        report.diagnostics.sort_by(|a, b| {
            (a.span.line, a.span.start, a.span.end, a.code, &a.message).cmp(&(
                b.span.line,
                b.span.start,
                b.span.end,
                b.code,
                &b.message,
            ))
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CapReason;
    use std::time::Duration;

    const FIG1: &str = "STEAMROOT=\"$(cd \"${0%/*}\" && echo $PWD)\"\nrm -rf \"$STEAMROOT/\"*\n";

    #[test]
    fn fuel_exhaustion_keeps_found_diagnostics() {
        // Fig. 1 first, then filler; the budget dies in the filler, so
        // the dangerous delete found earlier must survive.
        let mut src = String::from(FIG1);
        for i in 0..50 {
            src.push_str(&format!("echo filler{i}\n"));
        }
        let report = analyze_source_with(
            &src,
            AnalysisOptions {
                fuel: Some(30),
                ..AnalysisOptions::default()
            },
        )
        .expect("valid script");
        assert!(
            report.has(DiagCode::DangerousDelete),
            "budget exhaustion must not lose diagnostics found before it"
        );
        assert!(report.incomplete);
        assert!(
            report.cap_hits.iter().any(|h| h.reason == CapReason::Fuel),
            "cap hits: {:?}",
            report.cap_hits
        );
        let note = report
            .diagnostics
            .iter()
            .find(|d| d.cap_reason == Some(CapReason::Fuel))
            .expect("a machine-readable fuel note");
        assert!(note.message.contains("fuel budget (30) exhausted"));
    }

    #[test]
    fn zero_fuel_still_produces_a_marked_report() {
        let report = analyze_source_with(
            "echo hello\n",
            AnalysisOptions {
                fuel: Some(0),
                ..AnalysisOptions::default()
            },
        )
        .expect("valid script");
        assert!(report.incomplete);
        assert!(report.cap_hits.iter().any(|h| h.reason == CapReason::Fuel));
        assert_eq!(report.terminal_worlds, 1, "the initial world survives");
    }

    #[test]
    fn expired_deadline_degrades_like_fuel() {
        let report = analyze_source_with(
            "echo a\necho b\n",
            AnalysisOptions {
                deadline: Some(Duration::ZERO),
                ..AnalysisOptions::default()
            },
        )
        .expect("valid script");
        assert!(report.incomplete);
        assert!(
            report
                .cap_hits
                .iter()
                .any(|h| h.reason == CapReason::Deadline),
            "cap hits: {:?}",
            report.cap_hits
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.cap_reason == Some(CapReason::Deadline)));
    }

    #[test]
    fn unlimited_budgets_change_nothing() {
        let bounded = analyze_source_with(
            FIG1,
            AnalysisOptions {
                fuel: Some(1_000_000),
                deadline: Some(Duration::from_secs(3600)),
                ..AnalysisOptions::default()
            },
        )
        .expect("valid script");
        let unbounded = analyze_source(FIG1).expect("valid script");
        assert_eq!(bounded.diagnostics, unbounded.diagnostics);
        assert_eq!(bounded.terminal_worlds, unbounded.terminal_worlds);
    }

    #[test]
    fn canonical_options_cover_every_semantic_field() {
        let base = AnalysisOptions::default();
        assert_eq!(
            base.canonical(),
            "loop_bound=2;max_worlds=64;stream_types=true;pruning=true;fuel=-;deadline_ns=-"
        );
        // Each semantic field moves the canonical string…
        for changed in [
            AnalysisOptions { loop_bound: 3, ..base.clone() },
            AnalysisOptions { max_worlds: 32, ..base.clone() },
            AnalysisOptions { enable_stream_types: false, ..base.clone() },
            AnalysisOptions { enable_pruning: false, ..base.clone() },
            AnalysisOptions { fuel: Some(100), ..base.clone() },
            AnalysisOptions { deadline: Some(Duration::from_millis(5)), ..base.clone() },
        ] {
            assert_ne!(changed.canonical(), base.canonical(), "{changed:?}");
        }
        // …and the side-channel options (profile attaches timings,
        // audit attaches a coverage map; neither enters the serialized
        // report body) do not.
        let profiled = AnalysisOptions { profile: true, ..base.clone() };
        assert_eq!(profiled.canonical(), base.canonical());
        let audited = AnalysisOptions { audit: true, ..base.clone() };
        assert_eq!(audited.canonical(), base.canonical());
        // `incremental` is a strategy switch under a byte-identity
        // obligation — enabling it must never fork the daemon cache
        // keyspace.
        let incremental = AnalysisOptions { incremental: true, ..base.clone() };
        assert_eq!(incremental.canonical(), base.canonical());
    }

    #[test]
    fn incremental_flag_routes_to_the_incremental_engine_byte_identically() {
        let cold = analyze_source(FIG1).expect("valid script");
        let incr = analyze_source_with(
            FIG1,
            AnalysisOptions { incremental: true, ..AnalysisOptions::default() },
        )
        .expect("valid script");
        assert_eq!(cold.diagnostics, incr.diagnostics);
        assert_eq!(cold.terminal_worlds, incr.terminal_worlds);
        assert_eq!(cold.worlds_explored, incr.worlds_explored);
        assert_eq!(cold.cap_hits, incr.cap_hits);
        assert_eq!(cold.world_tree, incr.world_tree);
    }

    #[test]
    fn resilient_analysis_of_valid_source_matches_strict() {
        let strict = analyze_source(FIG1).expect("valid script");
        let resilient = analyze_source_resilient(FIG1, AnalysisOptions::default());
        assert!(!resilient.parse_partial);
        assert_eq!(strict.diagnostics, resilient.diagnostics);
    }

    #[test]
    fn resilient_analysis_reports_skipped_regions() {
        let src = ")\necho ok\nrm -rf /\n";
        let report = analyze_source_resilient(src, AnalysisOptions::default());
        assert!(report.parse_partial);
        assert!(report.has(DiagCode::ParsePartial));
        assert!(
            report.has(DiagCode::DangerousDelete),
            "statements after the bad line must still be analyzed"
        );
    }
}
