//! The public analysis API.
//!
//! [`analyze_source`] parses and analyzes a script, returning an
//! [`AnalysisReport`] with deduplicated diagnostics and exploration
//! statistics. Options control the exploration budget and the ablation
//! switches used by the evaluation harness (E9 measures the effect of
//! disabling concrete pruning; E6 compares monomorphic and polymorphic
//! stream types through `shoal-streamty` directly).

use crate::diag::{DiagCode, Diagnostic};
use crate::engine::Engine;
use crate::provenance::WorldTree;
use crate::stats::{CapHit, ProfileReport};
use crate::world::World;
use shoal_shparse::{parse_script, ParseError, Script};
use std::time::Instant;

/// Analysis configuration.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Loop unrolling bound.
    pub loop_bound: usize,
    /// Maximum simultaneously-live worlds.
    pub max_worlds: usize,
    /// Run the stream-type checker over pipelines.
    pub enable_stream_types: bool,
    /// Refine symbol constraints at forks and prune infeasible worlds
    /// (§3 "pruning via concrete state whenever possible"). Disabling
    /// this is the E9 ablation.
    pub enable_pruning: bool,
    /// Attach a [`ProfileReport`] (per-phase wall time plus exploration
    /// counters) to the report.
    pub profile: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            loop_bound: 2,
            max_worlds: 64,
            enable_stream_types: true,
            enable_pruning: true,
            profile: false,
        }
    }
}

/// The result of analyzing one script.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Deduplicated diagnostics, ordered by line then code.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of execution paths that reached the end of the script.
    pub paths_completed: usize,
    /// Exact peak size of the live world set during exploration
    /// (tracked by the engine's branch accounting).
    pub worlds_explored: usize,
    /// Number of terminal worlds — the old meaning of
    /// `worlds_explored`, kept under its proper name.
    pub terminal_worlds: usize,
    /// True when exploration hit a cap somewhere.
    pub incomplete: bool,
    /// Where exploration hit bounds (machine-readable: which cap,
    /// which line, how many worlds lost). Empty when exploration was
    /// exhaustive.
    pub cap_hits: Vec<CapHit>,
    /// Per-phase timings and exploration counters; present when
    /// [`AnalysisOptions::profile`] was set.
    pub profile: Option<ProfileReport>,
    /// The explored world tree (provenance layer): one node per world,
    /// with fork site, added constraint, and outcome. Its terminal-leaf
    /// count equals [`AnalysisReport::terminal_worlds`].
    pub world_tree: WorldTree,
}

impl AnalysisReport {
    /// Diagnostics of a given code.
    pub fn with_code(&self, code: DiagCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// True when a diagnostic with this code was reported.
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

/// Analyzes a parsed script (no annotations).
pub fn analyze_script(script: &Script, opts: AnalysisOptions) -> AnalysisReport {
    analyze_script_annotated(script, opts, crate::annotations::Annotations::default())
}

/// Analyzes a parsed script with inline annotations in effect.
pub fn analyze_script_annotated(
    script: &Script,
    opts: AnalysisOptions,
    annotations: crate::annotations::Annotations,
) -> AnalysisReport {
    let opts_profile = opts.profile;
    let mut engine = Engine::new(opts);
    let mut initial = World::initial();
    // `#@ var NAME : TYPE` constrains the initial environment.
    let var_annotations: Vec<(String, shoal_relang::Regex)> = annotations
        .vars
        .iter()
        .map(|(n, t)| (n.clone(), t.clone()))
        .collect();
    engine.annotations = annotations;
    for (name, ty) in var_annotations {
        let v = initial.fresh_sym(ty, &format!("${name} (annotated)"));
        initial.set_var(&name, v);
    }
    let t_start = Instant::now();
    let mut worlds = {
        let _span = shoal_obs::span!("exec_items");
        engine.exec_items(vec![initial], &script.items)
    };
    let exec_us = t_start.elapsed().as_micros() as u64;
    let t_idem = Instant::now();
    // Idempotence pass (§4, CoLiS criterion): a path succeeded only
    // because some location was in state S initially, and the script
    // left it in a different state — so an immediate second run of the
    // same path fails at that command.
    for w in worlds.iter_mut() {
        let mut findings = Vec::new();
        for (key, assumed, span) in &w.fragile_assumptions {
            let now = w.fs.lookup(key);
            let flipped = match (assumed, now) {
                (shoal_symfs::state::NodeState::Absent, Some(s)) if s.exists() => true,
                (a, Some(shoal_symfs::state::NodeState::Absent)) if a.exists() => true,
                _ => false,
            };
            if flipped {
                findings.push(Diagnostic::new(
                    DiagCode::IdempotenceRisk,
                    crate::diag::Severity::Warning,
                    *span,
                    format!(
                        "not idempotent: this command succeeds only while {key} is {assumed},                          but the script leaves it {} — a second run fails here",
                        now.map(|s| s.to_string()).unwrap_or_else(|| "changed".into())
                    ),
                )
                .with_origin("checker:idempotence"));
            }
        }
        for d in findings {
            w.report(d);
        }
    }
    let worlds = worlds;
    let idempotence_us = t_idem.elapsed().as_micros() as u64;
    let t_report = Instant::now();
    let paths_completed = worlds.len();
    // Close the world tree: every surviving world is a terminal leaf,
    // so the tree's terminal-leaf count reconciles exactly with
    // `terminal_worlds`.
    {
        let mut tree = engine.tree.borrow_mut();
        for w in &worlds {
            tree.mark_terminal(w.id);
        }
    }
    let world_tree = engine.tree.replace(WorldTree::new());
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut incomplete = false;
    for w in &worlds {
        for d in &w.diags {
            if d.code == DiagCode::AnalysisIncomplete {
                incomplete = true;
            }
            // Deduplicate by (span, code, message) keeping the first
            // (whose path condition is usually the shortest).
            let dup = diagnostics
                .iter()
                .any(|e| e.code == d.code && e.span == d.span && e.message == d.message);
            if !dup {
                diagnostics.push(d.clone());
            }
        }
    }
    // Deterministic order regardless of world-exploration order:
    // full span, then code, then message.
    diagnostics.sort_by(|a, b| {
        (a.span.line, a.span.start, a.span.end, a.code, &a.message).cmp(&(
            b.span.line,
            b.span.start,
            b.span.end,
            b.code,
            &b.message,
        ))
    });
    let report_us = t_report.elapsed().as_micros() as u64;
    let stats = &engine.stats;
    let peak_live = stats.peak_live.get().max(1);
    shoal_obs::event!(
        "join",
        site = "analyze",
        terminal_worlds = paths_completed,
        peak_live = peak_live,
        forks = stats.forks.get(),
        pruned = stats.pruned.get(),
        cap_dropped = stats.cap_dropped.get()
    );
    shoal_obs::counter_add("analyze.runs", 1);
    let profile = opts_profile.then(|| ProfileReport {
        parse_us: 0,
        exec_us,
        idempotence_us,
        report_us,
        total_us: t_start.elapsed().as_micros() as u64,
        peak_live_worlds: peak_live,
        forks: stats.forks.get(),
        worlds_pruned: stats.pruned.get(),
        cap_dropped: stats.cap_dropped.get(),
    });
    AnalysisReport {
        diagnostics,
        paths_completed,
        worlds_explored: peak_live,
        terminal_worlds: paths_completed,
        incomplete,
        cap_hits: stats.take_cap_hits(),
        profile,
        world_tree,
    }
}

/// Parses and analyzes shell source with default options.
///
/// # Errors
///
/// Returns the parse error if the source is not valid shell.
pub fn analyze_source(src: &str) -> Result<AnalysisReport, ParseError> {
    analyze_source_with(src, AnalysisOptions::default())
}

/// Parses and analyzes shell source with explicit options.
///
/// # Errors
///
/// Returns the parse error if the source is not valid shell.
pub fn analyze_source_with(src: &str, opts: AnalysisOptions) -> Result<AnalysisReport, ParseError> {
    let t_parse = Instant::now();
    let script = {
        let _span = shoal_obs::span!("parse");
        parse_script(src)?
    };
    let parse_us = t_parse.elapsed().as_micros() as u64;
    let attach_parse = |mut report: AnalysisReport| {
        if let Some(p) = report.profile.as_mut() {
            p.parse_us = parse_us;
            p.total_us += parse_us;
        }
        report
    };
    match crate::annotations::parse_annotations(src) {
        Ok(annotations) => Ok(attach_parse(analyze_script_annotated(&script, opts, annotations))),
        Err(e) => {
            // A malformed annotation must not hide the analysis; report
            // it as a note and continue un-annotated.
            let mut report = analyze_script(&script, opts);
            report.diagnostics.insert(
                0,
                Diagnostic::new(
                    DiagCode::AnalysisIncomplete,
                    crate::diag::Severity::Note,
                    shoal_shparse::Span::new(0, 0, e.line),
                    e.to_string(),
                ),
            );
            Ok(attach_parse(report))
        }
    }
}
