//! shoal-audit: the engine-side precision/coverage recorder and the
//! fleet-wide `shoal-audit/v1` report.
//!
//! The obs layer ([`shoal_obs::audit`]) defines the mergeable
//! [`CoverageMap`]; this module owns the two ends that need engine
//! knowledge:
//!
//! * [`AuditRecorder`] — collected by the engine during one analysis
//!   (only when [`crate::AnalysisOptions::audit`] is set; the recorder
//!   holds empty containers otherwise and is never touched, so the
//!   audit-off path allocates nothing and reads no clocks). Command
//!   occurrences are deduplicated **per call site** (name + line), not
//!   per live world: a script that forks into 64 worlds before calling
//!   an unspecced command still counts one site, so fork explosion
//!   cannot skew missing-spec rankings.
//! * [`AuditReport`] — the fleet fold over a [`ScanSummary`]: commands
//!   ranked by `scripts × sites` lacking specs, the precision-loss
//!   taxonomy with per-cause totals and worst-offender scripts, and
//!   checker fired/suppressed counts. Rendering (text and JSON) is
//!   byte-deterministic: every collection is ordered, nothing depends
//!   on scheduling, clocks, or hash order.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::scan::ScanSummary;
use shoal_obs::audit::{CheckerCov, CommandCov, CoverageMap, LossCause};
use shoal_obs::json::Json;

/// The closed universe of engine checkers, in canonical order. Every
/// per-script [`CoverageMap`] carries an entry for each (fired or not)
/// so "degraded and silent" — the suppression upper bound — is
/// well-defined and merge-stable.
pub const CHECKER_IDS: [&str; 5] = ["delete", "idempotence", "platform", "rm", "streamty"];

#[derive(Debug, Clone, Default)]
struct CmdRec {
    has_spec: bool,
    lines: BTreeSet<u32>,
}

/// Per-analysis audit state, recorded by the engine and finished into a
/// single-script [`CoverageMap`]. All containers start empty; an
/// audit-off analysis constructs exactly one of these (three empty
/// `BTreeMap`/`Vec` headers, no heap allocation) and never calls into
/// it.
#[derive(Debug, Clone, Default)]
pub struct AuditRecorder {
    commands: BTreeMap<String, CmdRec>,
    losses: BTreeMap<(LossCause, String), u64>,
}

impl AuditRecorder {
    /// Records one command occurrence at a call site. Repeated hits on
    /// the same (name, line) — e.g. from many live worlds executing the
    /// same statement — collapse into one site.
    pub fn record_command(&mut self, name: &str, line: u32, has_spec: bool) {
        let rec = self.commands.entry(name.to_string()).or_default();
        rec.has_spec |= has_spec;
        rec.lines.insert(line);
    }

    /// Records `n` precision-loss events of `cause` at `site`.
    pub fn record_loss(&mut self, cause: LossCause, site: String, n: u64) {
        if n == 0 {
            return;
        }
        let e = self.losses.entry((cause, site)).or_insert(0);
        *e = e.saturating_add(n);
    }

    /// Rewrites every line coordinate through `map` — used by the
    /// incremental engine ([`crate::incr`]) when a replayed checkpoint
    /// must shift to the edited script's layout. Command sites carry
    /// structured lines; loss sites use the engine's uniform `line N`
    /// site strings, which are parsed back, remapped, and re-rendered.
    /// Returns `false` (recorder contents unspecified) when a
    /// coordinate does not map or a loss site is not line-shaped; the
    /// caller must then discard this recorder and fall back.
    pub fn relocate_lines(&mut self, map: &dyn Fn(u32) -> Option<u32>) -> bool {
        let mut commands = BTreeMap::new();
        for (name, rec) in std::mem::take(&mut self.commands) {
            let mut lines = BTreeSet::new();
            for l in rec.lines {
                match map(l) {
                    Some(n) => {
                        lines.insert(n);
                    }
                    None => return false,
                }
            }
            commands.insert(name, CmdRec { has_spec: rec.has_spec, lines });
        }
        self.commands = commands;
        let mut losses = BTreeMap::new();
        for ((cause, site), n) in std::mem::take(&mut self.losses) {
            let new_site = match site.strip_prefix("line ") {
                Some(rest) => match rest.parse::<u32>().ok().and_then(map) {
                    Some(nl) => format!("line {nl}"),
                    None => return false,
                },
                None => return false,
            };
            let e = losses.entry((cause, new_site)).or_insert(0u64);
            *e = e.saturating_add(n);
        }
        self.losses = losses;
        true
    }

    /// Finalizes into a single-script [`CoverageMap`]: checker firing
    /// counts come from the final deduplicated diagnostics (via their
    /// `checker:<id>` origin tags), and every unspecced call site
    /// becomes a [`LossCause::NoSpec`] loss.
    pub fn finish(self, diagnostics: &[Diagnostic]) -> CoverageMap {
        let mut m = CoverageMap { scripts: 1, ..CoverageMap::default() };
        for id in CHECKER_IDS {
            m.checkers.insert(id.to_string(), CheckerCov::default());
        }
        for d in diagnostics {
            if let Some(id) = d.origin.as_deref().and_then(|o| o.strip_prefix("checker:")) {
                if let Some(c) = m.checkers.get_mut(id) {
                    c.fired += 1;
                }
            }
        }
        let mut no_spec_sites: Vec<String> = Vec::new();
        for (name, rec) in self.commands {
            if !rec.has_spec {
                for line in &rec.lines {
                    no_spec_sites.push(format!("{name}:{line}"));
                }
            }
            m.commands.insert(
                name,
                CommandCov { has_spec: rec.has_spec, sites: rec.lines.len() as u64, scripts: 1 },
            );
        }
        for site in no_spec_sites {
            m.add_loss(LossCause::NoSpec, &site, 1);
        }
        for ((cause, site), n) in self.losses {
            m.add_loss(cause, &site, n);
        }
        m
    }
}

/// One command in the missing-spec ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingSpec {
    pub command: String,
    pub scripts: u64,
    pub sites: u64,
    /// `scripts × sites` — the mining-priority score.
    pub score: u64,
}

/// The fleet-wide audit fold over a scan: spec coverage, the
/// precision-loss taxonomy, and checker health.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Scripts the scan saw.
    pub total: usize,
    /// Scripts that produced a coverage map.
    pub audited: usize,
    /// Scripts with no coverage map (panicked workers, daemon-served
    /// results) — reported explicitly, never silently dropped.
    pub unaudited: usize,
    /// The merged fleet coverage map.
    pub fleet: CoverageMap,
    /// Commands lacking specs, ranked by score descending then name.
    pub missing: Vec<MissingSpec>,
    /// Per cause: worst-offender scripts as (path, loss count), count
    /// descending then path ascending, capped at
    /// [`AuditReport::WORST_PER_CAUSE`].
    pub worst: BTreeMap<LossCause, Vec<(String, u64)>>,
}

impl AuditReport {
    /// Worst-offender scripts kept per cause (the JSON carries the full
    /// per-cause totals regardless, so this cap loses no counts).
    pub const WORST_PER_CAUSE: usize = 3;

    /// Builds the fleet report from per-script scan results. Input
    /// order does not matter (CoverageMap merge is commutative and the
    /// rankings re-sort), so any `--jobs` schedule folds to the same
    /// report.
    pub fn build(summary: &ScanSummary) -> AuditReport {
        let mut fleet = CoverageMap::default();
        let mut audited = 0usize;
        let mut per_script: Vec<(&str, &CoverageMap)> = Vec::new();
        for r in &summary.results {
            if let Some(cov) = r.report.as_ref().and_then(|rep| rep.coverage.as_ref()) {
                audited += 1;
                fleet.merge(cov);
                per_script.push((r.path.as_str(), cov));
            }
        }
        let missing = fleet
            .missing_specs()
            .into_iter()
            .map(|(name, c, score)| MissingSpec {
                command: name.to_string(),
                scripts: c.scripts,
                sites: c.sites,
                score,
            })
            .collect();
        let mut worst: BTreeMap<LossCause, Vec<(String, u64)>> = BTreeMap::new();
        for cause in LossCause::ALL {
            let mut offenders: Vec<(String, u64)> = per_script
                .iter()
                .filter_map(|(path, cov)| {
                    let n = cov.loss_totals().get(&cause).copied().unwrap_or(0);
                    (n > 0).then(|| (path.to_string(), n))
                })
                .collect();
            if offenders.is_empty() {
                continue;
            }
            offenders.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            offenders.truncate(Self::WORST_PER_CAUSE);
            worst.insert(cause, offenders);
        }
        AuditReport {
            total: summary.results.len(),
            audited,
            unaudited: summary.results.len() - audited,
            fleet,
            missing,
            worst,
        }
    }

    /// The `shoal-audit/v1` JSON document. Byte-deterministic: all maps
    /// are ordered and all rankings break ties on names/paths.
    pub fn to_json(&self) -> Json {
        let missing = self
            .missing
            .iter()
            .map(|m| {
                Json::Obj(vec![
                    ("command".to_string(), Json::Str(m.command.clone())),
                    ("scripts".to_string(), Json::Num(m.scripts as f64)),
                    ("sites".to_string(), Json::Num(m.sites as f64)),
                    ("score".to_string(), Json::Num(m.score as f64)),
                ])
            })
            .collect();
        let by_cause = self
            .fleet
            .loss_totals()
            .iter()
            .map(|(cause, n)| (cause.as_str().to_string(), Json::Num(*n as f64)))
            .collect();
        let worst = self
            .worst
            .iter()
            .map(|(cause, offenders)| {
                (
                    cause.as_str().to_string(),
                    Json::Arr(
                        offenders
                            .iter()
                            .map(|(path, n)| {
                                Json::Obj(vec![
                                    ("path".to_string(), Json::Str(path.clone())),
                                    ("count".to_string(), Json::Num(*n as f64)),
                                ])
                            })
                            .collect(),
                    ),
                )
            })
            .collect();
        let checkers = self
            .fleet
            .checkers
            .iter()
            .map(|(id, c)| {
                (
                    id.clone(),
                    Json::Obj(vec![
                        ("fired".to_string(), Json::Num(c.fired as f64)),
                        ("suppressed".to_string(), Json::Num(c.suppressed as f64)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str("shoal-audit/v1".to_string())),
            ("tool".to_string(), Json::Str("shoal".to_string())),
            ("version".to_string(), Json::Str(env!("CARGO_PKG_VERSION").to_string())),
            (
                "scripts".to_string(),
                Json::Obj(vec![
                    ("total".to_string(), Json::Num(self.total as f64)),
                    ("audited".to_string(), Json::Num(self.audited as f64)),
                    ("unaudited".to_string(), Json::Num(self.unaudited as f64)),
                    ("degraded".to_string(), Json::Num(self.fleet.degraded_scripts as f64)),
                ]),
            ),
            ("missing_specs".to_string(), Json::Arr(missing)),
            (
                "losses".to_string(),
                Json::Obj(vec![
                    ("total".to_string(), Json::Num(self.fleet.total_losses() as f64)),
                    ("by_cause".to_string(), Json::Obj(by_cause)),
                    ("worst".to_string(), Json::Obj(worst)),
                ]),
            ),
            ("checkers".to_string(), Json::Obj(checkers)),
        ])
    }

    /// Human rendering. The missing-spec table shows the top 10 with an
    /// explicit `(+N more)` marker — no silent truncation.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit: {} script(s) — {} audited, {} unaudited, {} degraded\n",
            self.total, self.audited, self.unaudited, self.fleet.degraded_scripts
        ));
        if self.missing.is_empty() {
            out.push_str("missing specs: none — every command was covered\n");
        } else {
            out.push_str("missing specs (score = scripts x sites):\n");
            for m in self.missing.iter().take(10) {
                out.push_str(&format!(
                    "  {:<20} score {:>4}   ({} script(s), {} site(s))\n",
                    m.command, m.score, m.scripts, m.sites
                ));
            }
            if self.missing.len() > 10 {
                out.push_str(&format!("  (+{} more)\n", self.missing.len() - 10));
            }
        }
        let totals = self.fleet.loss_totals();
        out.push_str(&format!("precision losses: {} total\n", self.fleet.total_losses()));
        for (cause, n) in &totals {
            let offenders = self
                .worst
                .get(cause)
                .map(|v| {
                    v.iter()
                        .map(|(p, c)| format!("{p} ({c})"))
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_default();
            out.push_str(&format!("  {:<14} {:>5}   worst: {}\n", cause.as_str(), n, offenders));
        }
        out.push_str("checkers (fired / possibly suppressed):\n");
        for (id, c) in &self.fleet.checkers {
            out.push_str(&format!("  {:<14} {:>5} / {}\n", id, c.fired, c.suppressed));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{DiagCode, Severity};
    use shoal_shparse::Span;

    #[test]
    fn recorder_dedupes_call_sites_not_worlds() {
        let mut rec = AuditRecorder::default();
        // 64 live worlds all executing `mystery` at line 7.
        for _ in 0..64 {
            rec.record_command("mystery", 7, false);
        }
        rec.record_command("mystery", 9, false);
        let cov = rec.finish(&[]);
        assert_eq!(cov.commands["mystery"].sites, 2);
        let totals = cov.loss_totals();
        assert_eq!(totals[&LossCause::NoSpec], 2);
    }

    #[test]
    fn finish_counts_checker_firings_and_flags_suppression() {
        let mut rec = AuditRecorder::default();
        rec.record_loss(LossCause::LoopWiden, "line 3".to_string(), 1);
        let fired = Diagnostic::new(
            DiagCode::DangerousDelete,
            Severity::Error,
            Span::new(0, 0, 2),
            "boom".to_string(),
        )
        .with_origin("checker:delete");
        let cov = rec.finish(&[fired]);
        assert_eq!(cov.checkers["delete"].fired, 1);
        assert_eq!(cov.checkers["delete"].suppressed, 0);
        // Degraded script + silent checker = possibly suppressed.
        assert_eq!(cov.checkers["platform"].suppressed, 1);
        assert_eq!(cov.degraded_scripts, 1);
    }
}
