//! Provenance: *why* the analyzer believes each finding.
//!
//! The paper's pitch (§2) is that semantics-driven findings are
//! actionable because each one names the execution it arises on. This
//! module makes that claim first-class:
//!
//! * every explored world carries a stable [`WorldId`], assigned at the
//!   fork site that created it, and the engine records the **world
//!   tree** ([`WorldTree`]): parent/child edges, the fork site and the
//!   constraint added on each edge, and each world's final outcome
//!   (terminal, pruned as infeasible, or dropped at an exploration cap);
//! * every constraint a world accumulates is a typed [`TrailEntry`]
//!   (kind + span + description), not a bare string;
//! * every diagnostic reported on a path carries a [`Provenance`]: the
//!   witness world's id plus its full trail at the moment of the report.
//!
//! On top sit the serializers: deterministic DOT and JSON export of the
//! tree (for corpus inspection of Figs. 1–3), a machine-readable JSON
//! report format, SARIF 2.1.0 with `codeFlows` mapping witness paths so
//! findings render in standard viewers, and [`explain_diag`], which
//! replays a witness path as a step-by-step narrative.
//!
//! Invariants (checked by `tests/provenance.rs` at the workspace root):
//!
//! * IDs and the whole tree are stable under identical input — the
//!   engine explores deterministically, so two runs serialize
//!   byte-identically;
//! * the number of tree leaves marked [`WorldOutcome::Terminal`] equals
//!   `AnalysisReport::terminal_worlds` (PR 1's exact branch
//!   accounting), **by construction**: terminal marking appends a
//!   synthetic leaf whenever a world reached the end of the script
//!   without its node being a fresh leaf.

use crate::analyze::AnalysisReport;
use crate::diag::{DiagCode, Diagnostic, Severity};
use shoal_obs::json::Json;
use shoal_shparse::Span;
use std::fmt;
use std::sync::Arc;

/// Identifies one node of the world tree (dense, allocation order).
pub type WorldId = u32;

/// What kind of fact a trail entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrailKind {
    /// A control-flow decision (`if`/`while`/`&&`-branch taken).
    Branch,
    /// A refinement of a symbolic value (`case` match, `test` equality,
    /// parameter emptiness).
    Constraint,
    /// An assumption about the initial file system (`-d` checks, spec
    /// preconditions, `rm` existence).
    FsState,
    /// Precision loss: loop widening past the unrolling bound.
    Widen,
    /// A free-form assumption with no structured source.
    Assumption,
}

impl TrailKind {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            TrailKind::Branch => "branch",
            TrailKind::Constraint => "constraint",
            TrailKind::FsState => "fs-state",
            TrailKind::Widen => "widen",
            TrailKind::Assumption => "assumption",
        }
    }
}

impl fmt::Display for TrailKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One typed conjunct of a world's path condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrailEntry {
    /// What kind of fact this is.
    pub kind: TrailKind,
    /// Where in the script the fact was established (`line == 0` when
    /// the site had no span at hand).
    pub span: Span,
    /// Human-readable description of the conjunct.
    pub what: String,
}

impl TrailEntry {
    /// Creates an entry.
    pub fn new(kind: TrailKind, span: Span, what: impl Into<String>) -> TrailEntry {
        TrailEntry {
            kind,
            span,
            what: what.into(),
        }
    }
}

/// A world's path-condition trail: an append-only, structurally-shared
/// log of [`TrailEntry`] conjuncts.
///
/// Worlds fork constantly and report rarely, so the trail is a
/// [`shoal_obs::CowList`]: forking a world and attaching a trail to a
/// diagnostic are both O(1) pointer copies — the entries themselves are
/// shared between the parent world, its children, and every finding
/// reported along the way.
pub type Trail = shoal_obs::CowList<TrailEntry>;

/// The structured witness attached to a diagnostic: which world saw the
/// problem, and the constraint trail that world had accumulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// The witness world's id in the run's [`WorldTree`].
    pub world: WorldId,
    /// The witness world's trail at the moment of the report (shared
    /// with the world, not copied).
    pub trail: Trail,
}

/// How a world's exploration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldOutcome {
    /// Still live (interior fork nodes keep this).
    Open,
    /// Reached the end of the script.
    Terminal,
    /// Discarded as infeasible by constraint refinement.
    Pruned,
    /// Dropped when exploration hit `max_worlds`.
    CapDropped,
}

impl WorldOutcome {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            WorldOutcome::Open => "open",
            WorldOutcome::Terminal => "terminal",
            WorldOutcome::Pruned => "pruned",
            WorldOutcome::CapDropped => "cap-dropped",
        }
    }
}

/// One node of the explored world tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldNode {
    /// This node's id (its index in [`WorldTree::nodes`]).
    pub id: WorldId,
    /// The world this one forked from (`None` for the root).
    pub parent: Option<WorldId>,
    /// The primitive branch site that created it (`"if"`, `"case"`,
    /// `"cd"`, `"spec"`, …; `"root"`/`"end"` for synthetic nodes).
    pub site: &'static str,
    /// Source line of the fork site (0 when unknown).
    pub line: u32,
    /// The constraint this fork added to the child.
    pub constraint: String,
    /// How this world ended ([`WorldOutcome::Open`] for interior nodes).
    pub outcome: WorldOutcome,
    /// Child node ids, in creation order.
    pub children: Vec<WorldId>,
}

/// The tree of explored worlds for one analysis run.
///
/// Nodes live behind `Arc` so a snapshot of the tree (the incremental
/// engine checkpoints it after every statement) is a pointer-copy of
/// the spine, not a deep clone of tens of thousands of nodes; later
/// in-place mutations (`close`, a parent gaining a child) copy just the
/// touched node via `Arc::make_mut`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldTree {
    /// All nodes; index == id. Node 0 is the initial world.
    pub nodes: Vec<Arc<WorldNode>>,
}

impl Default for WorldTree {
    fn default() -> Self {
        WorldTree::new()
    }
}

impl WorldTree {
    /// A tree holding only the initial world.
    pub fn new() -> WorldTree {
        WorldTree {
            nodes: vec![Arc::new(WorldNode {
                id: 0,
                parent: None,
                site: "root",
                line: 0,
                constraint: String::new(),
                outcome: WorldOutcome::Open,
                children: Vec::new(),
            })],
        }
    }

    fn alloc(
        &mut self,
        parent: WorldId,
        site: &'static str,
        line: u32,
        constraint: String,
        outcome: WorldOutcome,
    ) -> WorldId {
        let id = self.nodes.len() as WorldId;
        self.nodes.push(Arc::new(WorldNode {
            id,
            parent: Some(parent),
            site,
            line,
            constraint,
            outcome,
            children: Vec::new(),
        }));
        Arc::make_mut(&mut self.nodes[parent as usize]).children.push(id);
        id
    }

    /// Records a surviving fork child of `parent` and returns its id.
    pub fn fork_child(
        &mut self,
        parent: WorldId,
        site: &'static str,
        line: u32,
        constraint: impl Into<String>,
    ) -> WorldId {
        self.alloc(parent, site, line, constraint.into(), WorldOutcome::Open)
    }

    /// Records a fork candidate discarded as infeasible.
    pub fn mark_pruned(
        &mut self,
        parent: WorldId,
        site: &'static str,
        line: u32,
        constraint: impl Into<String>,
    ) {
        self.alloc(parent, site, line, constraint.into(), WorldOutcome::Pruned);
    }

    /// Closes a live world with `outcome`. If the world's node already
    /// forked children (or was already closed), a synthetic leaf is
    /// appended instead, so every close produces exactly one leaf with
    /// that outcome — this is what makes the terminal-leaf count
    /// reconcile exactly with the engine's branch accounting.
    fn close(&mut self, id: WorldId, outcome: WorldOutcome) {
        let node = &self.nodes[id as usize];
        if node.children.is_empty() && node.outcome == WorldOutcome::Open {
            Arc::make_mut(&mut self.nodes[id as usize]).outcome = outcome;
        } else {
            let line = node.line;
            self.alloc(id, "end", line, String::new(), outcome);
        }
    }

    /// Closes a world that reached the end of the script.
    pub fn mark_terminal(&mut self, id: WorldId) {
        self.close(id, WorldOutcome::Terminal);
    }

    /// Closes a world dropped at a `max_worlds` cap.
    pub fn mark_cap_dropped(&mut self, id: WorldId) {
        self.close(id, WorldOutcome::CapDropped);
    }

    /// Number of nodes (including synthetic root/end nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    fn count(&self, outcome: WorldOutcome) -> usize {
        self.nodes.iter().filter(|n| n.outcome == outcome).count()
    }

    /// Leaves that reached the end of the script. Reconciles exactly
    /// with `AnalysisReport::terminal_worlds`.
    pub fn terminal_leaves(&self) -> usize {
        self.count(WorldOutcome::Terminal)
    }

    /// Fork candidates discarded as infeasible.
    pub fn pruned_leaves(&self) -> usize {
        self.count(WorldOutcome::Pruned)
    }

    /// Worlds dropped at exploration caps.
    pub fn cap_dropped_leaves(&self) -> usize {
        self.count(WorldOutcome::CapDropped)
    }

    /// Deterministic GraphViz DOT rendering of the tree.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("digraph world_tree {\n");
        out.push_str("  rankdir=TB;\n");
        out.push_str("  node [fontname=\"monospace\", fontsize=10, shape=box];\n");
        for n in &self.nodes {
            let label = if n.constraint.is_empty() {
                format!("w{} ({})", n.id, n.site)
            } else {
                format!("w{} ({})\\n{}", n.id, n.site, dot_escape(&n.constraint))
            };
            let style = match n.outcome {
                WorldOutcome::Open => "",
                WorldOutcome::Terminal => ", style=bold, color=blue",
                WorldOutcome::Pruned => ", style=dashed, color=gray",
                WorldOutcome::CapDropped => ", style=dashed, color=red",
            };
            out.push_str(&format!("  n{} [label=\"{}\"{}];\n", n.id, label, style));
        }
        for n in &self.nodes {
            if let Some(p) = n.parent {
                let edge_label = if n.line > 0 {
                    format!(" [label=\"line {}\"]", n.line)
                } else {
                    String::new()
                };
                out.push_str(&format!("  n{} -> n{}{};\n", p, n.id, edge_label));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Deterministic JSON rendering of the tree.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str("shoal-world-tree/v1".into())),
            (
                "terminal".into(),
                Json::Num(self.terminal_leaves() as f64),
            ),
            ("pruned".into(), Json::Num(self.pruned_leaves() as f64)),
            (
                "cap_dropped".into(),
                Json::Num(self.cap_dropped_leaves() as f64),
            ),
            (
                "nodes".into(),
                Json::Arr(
                    self.nodes
                        .iter()
                        .map(|n| {
                            Json::Obj(vec![
                                ("id".into(), Json::Num(n.id as f64)),
                                (
                                    "parent".into(),
                                    match n.parent {
                                        Some(p) => Json::Num(p as f64),
                                        None => Json::Null,
                                    },
                                ),
                                ("site".into(), Json::Str(n.site.into())),
                                ("line".into(), Json::Num(n.line as f64)),
                                ("constraint".into(), Json::Str(n.constraint.clone())),
                                ("outcome".into(), Json::Str(n.outcome.as_str().into())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

// ---------------------------------------------------------------------
// JSON report format (`--format json`, `xp all --json`)
// ---------------------------------------------------------------------

fn span_json(span: Span) -> Json {
    Json::Obj(vec![
        ("start".into(), Json::Num(span.start as f64)),
        ("end".into(), Json::Num(span.end as f64)),
        ("line".into(), Json::Num(span.line as f64)),
    ])
}

/// One diagnostic, with full structured provenance.
pub fn diag_json(d: &Diagnostic) -> Json {
    let mut fields = vec![
        ("code".into(), Json::Str(d.code.to_string())),
        ("severity".into(), Json::Str(d.severity.to_string())),
        ("span".into(), span_json(d.span)),
        ("message".into(), Json::Str(d.message.clone())),
    ];
    if let Some(origin) = &d.origin {
        fields.push(("origin".into(), Json::Str(origin.clone())));
    }
    if let Some(reason) = d.cap_reason {
        fields.push(("cap_reason".into(), Json::Str(reason.as_str().into())));
    }
    if let Some(p) = &d.provenance {
        fields.push((
            "provenance".into(),
            Json::Obj(vec![
                ("world".into(), Json::Num(p.world as f64)),
                (
                    "trail".into(),
                    Json::Arr(
                        p.trail
                            .iter()
                            .map(|t| {
                                Json::Obj(vec![
                                    ("kind".into(), Json::Str(t.kind.as_str().into())),
                                    ("span".into(), span_json(t.span)),
                                    ("what".into(), Json::Str(t.what.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// One script's report (diagnostics + exploration accounting + tree).
pub fn report_json(path: &str, report: &AnalysisReport) -> Json {
    let mut fields = vec![("path".into(), Json::Str(path.into()))];
    fields.extend(report_body_fields(report));
    Json::Obj(fields)
}

/// The path-independent fields of [`report_json`] — the unit the JIT
/// daemon caches. The cache key is content-addressed (script blob,
/// options, spec fingerprint, version), so the path the client happens
/// to analyze under cannot appear in the cached value; the client
/// re-attaches it via [`report_json`]'s field order (path first, then
/// exactly these fields), which keeps warm-cache output byte-identical
/// to a direct `shoal analyze --format json`.
pub fn report_body_fields(report: &AnalysisReport) -> Vec<(String, Json)> {
    vec![
        (
            "diagnostics".into(),
            Json::Arr(report.diagnostics.iter().map(diag_json).collect()),
        ),
        (
            "terminal_worlds".into(),
            Json::Num(report.terminal_worlds as f64),
        ),
        (
            "peak_live_worlds".into(),
            Json::Num(report.worlds_explored as f64),
        ),
        ("incomplete".into(), Json::Bool(report.incomplete)),
        (
            "parse_partial".into(),
            Json::Bool(report.parse_partial),
        ),
        (
            "cap_hits".into(),
            Json::Arr(
                report
                    .cap_hits
                    .iter()
                    .map(|h| {
                        Json::Obj(vec![
                            ("reason".into(), Json::Str(h.reason.as_str().into())),
                            ("line".into(), Json::Num(h.line as f64)),
                            ("dropped".into(), Json::Num(h.dropped as f64)),
                            ("hits".into(), Json::Num(h.hits as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("world_tree".into(), report.world_tree.to_json()),
    ]
}

/// The top-level JSON document for a set of analyzed scripts — the
/// `--format json` output and the serializer `xp all --json` reuses.
pub fn reports_json(entries: &[(String, AnalysisReport)]) -> Json {
    reports_envelope(entries.iter().map(|(p, r)| report_json(p, r)).collect())
}

/// Wraps per-script report objects in the `shoal-report/v1` envelope.
/// The JIT client assembles its output through this same function from
/// daemon-served bodies, so a warm `shoal jit --format json` is
/// byte-identical to `shoal analyze --format json`.
pub fn reports_envelope(scripts: Vec<Json>) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str("shoal-report/v1".into())),
        ("tool".into(), Json::Str("shoal".into())),
        (
            "version".into(),
            Json::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("scripts".into(), Json::Arr(scripts)),
    ])
}

// ---------------------------------------------------------------------
// SARIF 2.1.0
// ---------------------------------------------------------------------

fn sarif_level(s: Severity) -> &'static str {
    match s {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

fn sarif_location(uri: &str, line: u32, message: Option<&str>) -> Json {
    let mut phys = vec![(
        "artifactLocation".into(),
        Json::Obj(vec![("uri".into(), Json::Str(uri.into()))]),
    )];
    if line > 0 {
        phys.push((
            "region".into(),
            Json::Obj(vec![("startLine".into(), Json::Num(line as f64))]),
        ));
    }
    let mut loc = vec![("physicalLocation".into(), Json::Obj(phys))];
    if let Some(m) = message {
        loc.push((
            "message".into(),
            Json::Obj(vec![("text".into(), Json::Str(m.into()))]),
        ));
    }
    Json::Obj(loc)
}

fn sarif_code_flow(uri: &str, d: &Diagnostic, p: &Provenance) -> Json {
    let mut locations: Vec<Json> = p
        .trail
        .iter()
        .map(|t| {
            Json::Obj(vec![(
                "location".into(),
                sarif_location(uri, t.span.line, Some(&t.what)),
            )])
        })
        .collect();
    // The flow ends at the finding itself.
    locations.push(Json::Obj(vec![(
        "location".into(),
        sarif_location(uri, d.span.line, Some(&d.message)),
    )]));
    Json::Obj(vec![(
        "threadFlows".into(),
        Json::Arr(vec![Json::Obj(vec![(
            "locations".into(),
            Json::Arr(locations),
        )])]),
    )])
}

/// Builds a SARIF 2.1.0 document for a set of analyzed scripts. Witness
/// paths map to `codeFlows`, so standard viewers can step through the
/// execution a finding arises on.
pub fn sarif_json(entries: &[(String, AnalysisReport)]) -> Json {
    let rules: Vec<Json> = DiagCode::all()
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("id".into(), Json::Str(c.to_string())),
                (
                    "shortDescription".into(),
                    Json::Obj(vec![("text".into(), Json::Str(c.summary().into()))]),
                ),
            ])
        })
        .collect();
    let rule_index = |code: DiagCode| -> f64 {
        DiagCode::all().iter().position(|c| *c == code).unwrap_or(0) as f64
    };
    let mut results = Vec::new();
    for (path, report) in entries {
        for d in &report.diagnostics {
            let mut fields = vec![
                ("ruleId".into(), Json::Str(d.code.to_string())),
                ("ruleIndex".into(), Json::Num(rule_index(d.code))),
                ("level".into(), Json::Str(sarif_level(d.severity).into())),
                (
                    "message".into(),
                    Json::Obj(vec![("text".into(), Json::Str(d.message.clone()))]),
                ),
                (
                    "locations".into(),
                    Json::Arr(vec![sarif_location(path, d.span.line, None)]),
                ),
            ];
            if let Some(p) = &d.provenance {
                if !p.trail.is_empty() {
                    fields.push((
                        "codeFlows".into(),
                        Json::Arr(vec![sarif_code_flow(path, d, p)]),
                    ));
                }
            }
            results.push(Json::Obj(fields));
        }
    }
    Json::Obj(vec![
        (
            "$schema".into(),
            Json::Str("https://json.schemastore.org/sarif-2.1.0.json".into()),
        ),
        ("version".into(), Json::Str("2.1.0".into())),
        (
            "runs".into(),
            Json::Arr(vec![Json::Obj(vec![
                (
                    "tool".into(),
                    Json::Obj(vec![(
                        "driver".into(),
                        Json::Obj(vec![
                            ("name".into(), Json::Str("shoal".into())),
                            (
                                "version".into(),
                                Json::Str(env!("CARGO_PKG_VERSION").into()),
                            ),
                            (
                                "informationUri".into(),
                                Json::Str("https://example.org/shoal".into()),
                            ),
                            ("rules".into(), Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results".into(), Json::Arr(results)),
            ])]),
        ),
    ])
}

// ---------------------------------------------------------------------
// `shoal explain`: replay a witness path as a narrative
// ---------------------------------------------------------------------

/// Renders the step-by-step narrative of the execution on which
/// diagnostic `index` of `report` arises — the paper's Fig. 1 story
/// ("`cd` fails ⇒ `$STEAMROOT` stays empty ⇒ the glob expands to
/// `/*`") reconstructed from the recorded trail.
///
/// # Errors
///
/// When `index` is out of range, the error lists the available
/// diagnostics so the caller can pick one.
pub fn explain_diag(
    path: &str,
    src: &str,
    report: &AnalysisReport,
    index: usize,
) -> Result<String, String> {
    let Some(d) = report.diagnostics.get(index) else {
        if report.diagnostics.is_empty() {
            return Err(format!("{path}: no findings to explain"));
        }
        let mut msg = format!(
            "{path}: no finding #{index}; available findings:\n"
        );
        for (i, d) in report.diagnostics.iter().enumerate() {
            msg.push_str(&format!("  #{i}: {}: [{}] {}\n", d.span, d.code, d.message));
        }
        return Err(msg);
    };
    let lines: Vec<&str> = src.lines().collect();
    let quote = |line: u32, out: &mut String| {
        if line > 0 {
            if let Some(text) = lines.get(line as usize - 1) {
                let t = text.trim();
                if !t.is_empty() {
                    out.push_str(&format!("       > {t}\n"));
                }
            }
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "finding #{index} in {path}: {}: {} [{}] {}\n",
        d.span, d.severity, d.code, d.message
    ));
    match &d.provenance {
        Some(p) if !p.trail.is_empty() => {
            out.push_str(&format!(
                "witness execution (world {}, {} step(s)):\n",
                p.world,
                p.trail.len()
            ));
            let mut last_line = 0;
            for (i, t) in p.trail.iter().enumerate() {
                let at = if t.span.line > 0 {
                    format!("line {}: ", t.span.line)
                } else {
                    String::new()
                };
                out.push_str(&format!("  {}. {at}{} [{}]\n", i + 1, t.what, t.kind));
                if t.span.line != last_line {
                    quote(t.span.line, &mut out);
                    last_line = t.span.line;
                }
            }
        }
        Some(p) => {
            out.push_str(&format!(
                "witness execution (world {}): holds on the initial world — no \
                 branch had to be taken\n",
                p.world
            ));
        }
        None => {
            out.push_str("no recorded witness: the finding is not path-dependent\n");
        }
    }
    out.push_str(&format!("  ⇒ line {}: {}\n", d.span.line, d.message));
    quote(d.span.line, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_close_is_exact_per_call() {
        let mut t = WorldTree::new();
        let a = t.fork_child(0, "if", 3, "condition succeeded");
        let b = t.fork_child(0, "if", 3, "condition failed");
        t.mark_pruned(b, "case", 4, "infeasible arm");
        t.mark_terminal(a);
        // `b` forked a (pruned) child, so closing it appends a leaf.
        t.mark_terminal(b);
        assert_eq!(t.terminal_leaves(), 2);
        assert_eq!(t.pruned_leaves(), 1);
        // Double-closing an already-closed leaf still adds exactly one
        // terminal per call (robustness against missed fork sites).
        t.mark_terminal(a);
        assert_eq!(t.terminal_leaves(), 3);
    }

    #[test]
    fn dot_and_json_are_deterministic() {
        let build = || {
            let mut t = WorldTree::new();
            let a = t.fork_child(0, "cd", 2, "cd \"x\" succeeds");
            t.fork_child(0, "cd", 2, "cd \"x\" fails");
            t.mark_terminal(a);
            t
        };
        let (t1, t2) = (build(), build());
        assert_eq!(t1.to_dot(), t2.to_dot());
        assert_eq!(t1.to_json().to_text(), t2.to_json().to_text());
        assert!(t1.to_dot().contains("digraph world_tree"));
        assert!(t1.to_dot().contains("\\\"x\\\""), "quotes escaped for DOT");
    }
}
