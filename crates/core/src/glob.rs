//! Shell pattern (glob) semantics: conversion to regular languages and
//! the POSIX parameter-expansion pattern operators.
//!
//! Two distinct pattern worlds exist in the shell and both reduce to
//! regular languages here:
//!
//! * **glob matching** for `case` patterns and pathname expansion, where
//!   `*` matches any string, `?` one character, `[…]` a class;
//! * **prefix/suffix removal** in `${x%pat}`, `${x%%pat}`, `${x#pat}`,
//!   `${x##pat}` — precise on literals (scan for the smallest/largest
//!   matching affix) and constraint-preserving on symbols (language
//!   quotients, computed by `shoal-relang`).

use crate::value::SymStr;
use shoal_relang::{ByteClass, Dfa, Regex};
use shoal_shparse::{Word, WordPart};

/// Converts a glob pattern (as text) to the regular language it matches.
/// In parameter-expansion and `case` contexts `*` matches *any* string,
/// including `/` and newlines.
pub fn glob_to_regex(pattern: &str) -> Regex {
    let bytes = pattern.as_bytes();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'*' => parts.push(Regex::anything()),
            b'?' => parts.push(Regex::any_byte()),
            b'[' => {
                // Find the closing bracket (first `]` can be literal).
                let mut j = i + 1;
                let negated = j < bytes.len() && (bytes[j] == b'!' || bytes[j] == b'^');
                if negated {
                    j += 1;
                }
                let class_start = j;
                if j < bytes.len() && bytes[j] == b']' {
                    j += 1;
                }
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                if j >= bytes.len() {
                    // Unclosed: literal '['.
                    parts.push(Regex::byte(b'['));
                } else {
                    let mut class = ByteClass::new();
                    let inner = &bytes[class_start..j];
                    let mut k = 0;
                    while k < inner.len() {
                        if k + 2 < inner.len() && inner[k + 1] == b'-' {
                            class.insert_range(inner[k], inner[k + 2]);
                            k += 3;
                        } else {
                            class.insert(inner[k]);
                            k += 1;
                        }
                    }
                    if negated {
                        class = class.complement();
                    }
                    parts.push(Regex::class(class));
                    i = j;
                }
            }
            b'\\' if i + 1 < bytes.len() => {
                i += 1;
                parts.push(Regex::byte(bytes[i]));
            }
            b => parts.push(Regex::byte(b)),
        }
        i += 1;
    }
    Regex::concat(parts)
}

/// Converts a parsed pattern [`Word`] to its glob language. Quoted parts
/// are literal; unquoted glob metacharacters are active; expansions make
/// the pattern unknown (any string).
pub fn word_pattern_to_regex(word: &Word) -> Regex {
    let mut parts = Vec::new();
    for part in &word.parts {
        match part {
            WordPart::Literal(s) => parts.push(glob_to_regex(s)),
            WordPart::SingleQuoted(s) => parts.push(Regex::lit(s)),
            WordPart::DoubleQuoted(inner) => {
                for p in inner {
                    match p {
                        WordPart::Literal(s) => parts.push(Regex::lit(s)),
                        _ => parts.push(Regex::anything()),
                    }
                }
            }
            WordPart::Glob(g) => parts.push(glob_to_regex(g)),
            WordPart::Tilde(_) => parts.push(Regex::anything()),
            _ => parts.push(Regex::anything()),
        }
    }
    Regex::concat(parts)
}

/// Which affix a removal operator targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Affix {
    /// `${x#pat}` / `${x##pat}`.
    Prefix,
    /// `${x%pat}` / `${x%%pat}`.
    Suffix,
}

/// One possible outcome of a removal operator on a symbolic value.
#[derive(Debug, Clone)]
pub struct RemovalCase {
    /// The resulting value.
    pub result: SymStr,
    /// Constraint refinement to apply to the source symbol (when the
    /// source was a single symbol): the set of originals consistent with
    /// this case.
    pub source_refinement: Option<Regex>,
    /// Path-condition text for diagnostics.
    pub condition: String,
}

/// Applies `${x op pat}` removal. Literal values are computed exactly;
/// a single-symbol value splits into the "pattern matched" and "pattern
/// did not match" worlds with quotient-derived result constraints; other
/// shapes fall back to one over-approximate case.
pub fn remove_affix(
    value: &SymStr,
    pattern: &Regex,
    affix: Affix,
    longest: bool,
    fresh: &mut impl FnMut() -> u32,
) -> Vec<RemovalCase> {
    if let Some(text) = value.as_literal() {
        let result = remove_affix_literal(&text, pattern, affix, longest);
        return vec![RemovalCase {
            result: SymStr::lit(&result),
            source_refinement: None,
            condition: String::new(),
        }];
    }
    if let Some((_, constraint)) = value.as_single_sym() {
        let label = value.describe();
        // Strings where some affix matches.
        let matched_originals = match affix {
            Affix::Suffix => constraint.intersect(&Regex::anything().then(pattern)),
            Affix::Prefix => constraint.intersect(&pattern.then(&Regex::anything())),
        };
        let unmatched = match affix {
            Affix::Suffix => constraint.difference(&Regex::anything().then(pattern)),
            Affix::Prefix => constraint.difference(&pattern.then(&Regex::anything())),
        };
        let mut cases = Vec::new();
        if !matched_originals.is_empty() {
            // Quotients (the expensive step) are only needed when the
            // "pattern matched" world is live.
            let constraint_dfa = Dfa::from_regex(constraint);
            let pat_dfa = Dfa::from_regex(pattern);
            let quotient = match affix {
                Affix::Suffix => constraint_dfa.right_quotient(&pat_dfa).to_regex(),
                Affix::Prefix => constraint_dfa.left_quotient(&pat_dfa).to_regex(),
            };
            cases.push(RemovalCase {
                result: SymStr::sym(fresh(), quotient, &format!("{label} minus affix")),
                source_refinement: Some(matched_originals),
                condition: format!("{label} contains the pattern"),
            });
        }
        if !unmatched.is_empty() {
            // No affix matches: the value is unchanged, but we learn the
            // refinement.
            let mut unchanged = value.clone();
            if let Some((id, _)) = value.as_single_sym() {
                unchanged.refine_sym(id, &unmatched);
                unchanged.concretize();
            }
            cases.push(RemovalCase {
                result: unchanged,
                source_refinement: Some(unmatched),
                condition: format!("{label} does not contain the pattern"),
            });
        }
        if cases.is_empty() {
            cases.push(RemovalCase {
                result: SymStr::sym(fresh(), Regex::Empty, &label),
                source_refinement: None,
                condition: "unsatisfiable".to_string(),
            });
        }
        return cases;
    }
    // Mixed literal/symbol: over-approximate with a fresh symbol bounded
    // by the quotient of the whole value's language.
    let lang = Dfa::from_regex(&value.to_regex());
    let pat_dfa = Dfa::from_regex(pattern);
    let approx = match affix {
        Affix::Suffix => lang
            .right_quotient(&pat_dfa)
            .to_regex()
            .or(&value.to_regex()),
        Affix::Prefix => lang
            .left_quotient(&pat_dfa)
            .to_regex()
            .or(&value.to_regex()),
    };
    vec![RemovalCase {
        result: SymStr::sym(
            fresh(),
            approx,
            &format!("{} minus affix", value.describe()),
        ),
        source_refinement: None,
        condition: String::new(),
    }]
}

/// Exact removal on a literal string.
pub fn remove_affix_literal(text: &str, pattern: &Regex, affix: Affix, longest: bool) -> String {
    let bytes = text.as_bytes();
    let n = bytes.len();
    match affix {
        Affix::Suffix => {
            // Candidate suffixes start at i; smallest = largest i > …
            let mut candidates: Vec<usize> =
                (0..=n).filter(|&i| pattern.matches(&bytes[i..])).collect();
            candidates.sort_unstable();
            let cut = if longest {
                candidates.first().copied()
            } else {
                // Smallest non-trivial? POSIX: smallest matching suffix,
                // which may be empty.
                candidates.last().copied()
            };
            match cut {
                Some(i) => String::from_utf8_lossy(&bytes[..i]).into_owned(),
                None => text.to_string(),
            }
        }
        Affix::Prefix => {
            let mut candidates: Vec<usize> =
                (0..=n).filter(|&i| pattern.matches(&bytes[..i])).collect();
            candidates.sort_unstable();
            let cut = if longest {
                candidates.last().copied()
            } else {
                candidates.first().copied()
            };
            match cut {
                Some(i) => String::from_utf8_lossy(&bytes[i..]).into_owned(),
                None => text.to_string(),
            }
        }
    }
}

/// Does `value` definitely match / definitely not match / possibly match
/// the glob language? Used by `case`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchVerdict {
    /// Every possible value matches.
    Always,
    /// No possible value matches.
    Never,
    /// Some do, some do not.
    Maybe,
}

/// Classifies a symbolic value against a pattern language.
pub fn match_verdict(value: &SymStr, pattern: &Regex) -> MatchVerdict {
    let lang = value.to_regex();
    if lang.is_subset_of(pattern) {
        MatchVerdict::Always
    } else if lang.disjoint(pattern) {
        MatchVerdict::Never
    } else {
        MatchVerdict::Maybe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_conversion() {
        assert!(glob_to_regex("*.log").matches(b"x.log"));
        assert!(glob_to_regex("*.log").matches(b"a/b.log")); // * crosses /
        assert!(!glob_to_regex("*.log").matches(b"x.txt"));
        assert!(glob_to_regex("?x").matches(b"ax"));
        assert!(!glob_to_regex("?x").matches(b"x"));
        assert!(glob_to_regex("[a-c]z").matches(b"bz"));
        assert!(!glob_to_regex("[!a-c]z").matches(b"bz"));
        assert!(glob_to_regex("a\\*b").matches(b"a*b"));
        assert!(!glob_to_regex("a\\*b").matches(b"aXb"));
        assert!(glob_to_regex("*Linux").matches(b"Arch Linux"));
    }

    #[test]
    fn literal_suffix_removal() {
        // The paper's `${0%/*}`.
        let pat = glob_to_regex("/*");
        assert_eq!(
            remove_affix_literal("/home/jcarb/.steam/upd.sh", &pat, Affix::Suffix, false),
            "/home/jcarb/.steam"
        );
        assert_eq!(
            remove_affix_literal("/home/jcarb/.steam/upd.sh", &pat, Affix::Suffix, true),
            "" // `%%/*` removes from the first slash.
        );
        assert_eq!(
            remove_affix_literal("upd.sh", &pat, Affix::Suffix, false),
            "upd.sh"
        );
    }

    #[test]
    fn literal_prefix_removal() {
        let pat = glob_to_regex("*/");
        assert_eq!(
            remove_affix_literal("/usr/bin/env", &pat, Affix::Prefix, true),
            "env"
        );
        assert_eq!(
            remove_affix_literal("/usr/bin/env", &pat, Affix::Prefix, false),
            "usr/bin/env"
        );
        let ext = glob_to_regex("*.");
        assert_eq!(
            remove_affix_literal("archive.tar.gz", &ext, Affix::Prefix, true),
            "gz"
        );
    }

    #[test]
    fn smallest_suffix_may_be_empty_match() {
        // `${x%*}` removes the (empty) smallest suffix matching `*`.
        let pat = glob_to_regex("*");
        assert_eq!(
            remove_affix_literal("abc", &pat, Affix::Suffix, false),
            "abc"
        );
        assert_eq!(remove_affix_literal("abc", &pat, Affix::Suffix, true), "");
    }

    #[test]
    fn symbolic_removal_splits_worlds() {
        // ${0%/*} on a path-constrained symbol: matched world (dirname)
        // and unmatched world (no slash).
        let mut next = 100u32;
        let mut fresh = || {
            next += 1;
            next
        };
        let zero = SymStr::sym(0, Regex::parse("/?([^/\n]*/)*[^/\n]+").unwrap(), "$0");
        let cases = remove_affix(
            &zero,
            &glob_to_regex("/*"),
            Affix::Suffix,
            false,
            &mut fresh,
        );
        assert_eq!(cases.len(), 2);
        let matched = &cases[0];
        let unmatched = &cases[1];
        // The unmatched world's value contains no slash.
        assert!(unmatched.result.may_be("upd.sh"));
        assert!(!unmatched.result.may_be("/a/b"));
        // The matched world's result can be a dirname (or empty for
        // `/upd.sh`).
        assert!(matched.result.may_be_empty());
        assert!(matched.result.may_be("/home/jcarb/.steam"));
    }

    #[test]
    fn match_verdicts() {
        let debian = SymStr::lit("Debian");
        assert_eq!(
            match_verdict(&debian, &glob_to_regex("Debian")),
            MatchVerdict::Always
        );
        assert_eq!(
            match_verdict(&debian, &glob_to_regex("*Linux")),
            MatchVerdict::Never
        );
        let unknown = SymStr::sym(0, Regex::any_line(), "$x");
        assert_eq!(
            match_verdict(&unknown, &glob_to_regex("*Linux")),
            MatchVerdict::Maybe
        );
    }

    #[test]
    fn word_pattern_quoting() {
        use shoal_shparse::parse_script;
        // In `case` patterns, quoted stars are literal.
        let s = parse_script("case x in '*') echo lit ;; *) echo glob ;; esac").unwrap();
        let shoal_shparse::Command::Case(c, _, _) = &s.items[0].and_or.first.commands[0] else {
            panic!("case");
        };
        let lit_star = word_pattern_to_regex(&c.arms[0].patterns[0]);
        assert!(lit_star.matches(b"*"));
        assert!(!lit_star.matches(b"anything"));
        let glob_star = word_pattern_to_regex(&c.arms[1].patterns[0]);
        assert!(glob_star.matches(b"anything"));
    }
}
