//! Symbolic string values.
//!
//! A [`SymStr`] is the engine's value domain: a concatenation of
//! segments, each either literal text or a *symbol* — an unknown string
//! carrying a regular constraint on its possible contents. This is §3's
//! first ingredient ("generate and track relevant constraints on
//! state"): `$0`'s contents "may be file or directory paths … captured
//! by … a regular expression of the form `/?([^/]*/)*[^/]+`".
//!
//! Concatenation-of-segments (rather than a single regex per value)
//! keeps *identity*: after `STEAMROOT="$(…)"`, the engine knows `rm -fr
//! "$STEAMROOT"/*` deletes under the very symbol that the earlier `cd`
//! succeeded on — not just under "some string matching the same regex".

use shoal_relang::Regex;
use std::fmt;

/// Identifier of a symbolic string (fresh per unknown value).
pub type SymId = u32;

/// One segment of a symbolic string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Seg {
    /// Known text.
    Lit(String),
    /// An unknown string: identity plus a regular constraint on its
    /// possible contents.
    Sym {
        /// Identity (symbols with the same id always denote the same
        /// runtime string within one world).
        id: SymId,
        /// Constraint: the set of strings the symbol may be.
        constraint: Regex,
        /// Human label for diagnostics (e.g. `$0`, `$(cd …)`).
        label: String,
    },
}

/// A symbolic string: concatenation of segments. Empty vector = the
/// empty string.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymStr {
    /// Segments in order.
    pub segs: Vec<Seg>,
}

impl SymStr {
    /// The empty string.
    pub fn empty() -> SymStr {
        SymStr::default()
    }

    /// A literal value.
    pub fn lit(s: &str) -> SymStr {
        if s.is_empty() {
            SymStr::empty()
        } else {
            SymStr {
                segs: vec![Seg::Lit(s.to_string())],
            }
        }
    }

    /// A fresh symbolic value.
    pub fn sym(id: SymId, constraint: Regex, label: &str) -> SymStr {
        SymStr {
            segs: vec![Seg::Sym {
                id,
                constraint,
                label: label.to_string(),
            }],
        }
    }

    /// Concatenates two values, merging adjacent literals.
    pub fn concat(&self, other: &SymStr) -> SymStr {
        let mut segs = self.segs.clone();
        for seg in &other.segs {
            match (segs.last_mut(), seg) {
                (Some(Seg::Lit(a)), Seg::Lit(b)) => a.push_str(b),
                _ => segs.push(seg.clone()),
            }
        }
        SymStr { segs }
    }

    /// If fully literal, the concrete string.
    pub fn as_literal(&self) -> Option<String> {
        let mut out = String::new();
        for seg in &self.segs {
            match seg {
                Seg::Lit(s) => out.push_str(s),
                Seg::Sym { .. } => return None,
            }
        }
        Some(out)
    }

    /// True when the value is the literal empty string.
    pub fn is_literal_empty(&self) -> bool {
        self.as_literal().is_some_and(|s| s.is_empty())
    }

    /// The regular language of possible values.
    pub fn to_regex(&self) -> Regex {
        Regex::concat(
            self.segs
                .iter()
                .map(|seg| match seg {
                    Seg::Lit(s) => Regex::lit(s),
                    Seg::Sym { constraint, .. } => constraint.clone(),
                })
                .collect(),
        )
    }

    /// May the value be the empty string?
    pub fn may_be_empty(&self) -> bool {
        self.to_regex().nullable()
    }

    /// May the value be exactly `s`?
    pub fn may_be(&self, s: &str) -> bool {
        self.to_regex().matches(s.as_bytes())
    }

    /// Must the value be exactly `s` (the constraint admits nothing
    /// else)?
    pub fn must_be(&self, s: &str) -> bool {
        self.to_regex().equiv(&Regex::lit(s))
    }

    /// Is the value definitely non-empty?
    pub fn must_be_nonempty(&self) -> bool {
        !self.may_be_empty()
    }

    /// The single symbol id, when the whole value is one bare symbol.
    pub fn as_single_sym(&self) -> Option<(SymId, &Regex)> {
        match self.segs.as_slice() {
            [Seg::Sym { id, constraint, .. }] => Some((*id, constraint)),
            _ => None,
        }
    }

    /// Refines every occurrence of symbol `id` with an additional
    /// constraint (intersection). Returns false if the refinement makes
    /// some occurrence unsatisfiable (the whole world is then infeasible).
    pub fn refine_sym(&mut self, id: SymId, with: &Regex) -> bool {
        let mut ok = true;
        for seg in &mut self.segs {
            if let Seg::Sym {
                id: sid,
                constraint,
                ..
            } = seg
            {
                if *sid == id {
                    let refined = constraint.intersect(with);
                    if refined.is_empty() {
                        ok = false;
                    }
                    *constraint = refined;
                }
            }
        }
        ok
    }

    /// If the refined constraint pins the symbol to exactly one string,
    /// collapse it to a literal (concrete pruning, §3: "pruning via
    /// concrete state whenever possible").
    pub fn concretize(&mut self) {
        for seg in &mut self.segs {
            if let Seg::Sym { constraint, .. } = seg {
                if let Some(exact) = constraint.exact_literal() {
                    *seg = Seg::Lit(String::from_utf8_lossy(&exact).into_owned());
                }
            }
        }
        // Re-merge adjacent literals.
        let merged = SymStr::default().concat(self);
        self.segs = merged.segs;
    }

    /// A short rendering for diagnostics: literals verbatim, symbols as
    /// their labels.
    pub fn describe(&self) -> String {
        if let Some(l) = self.as_literal() {
            return format!("{l:?}");
        }
        let mut out = String::new();
        for seg in &self.segs {
            match seg {
                Seg::Lit(s) => out.push_str(s),
                Seg::Sym { label, .. } => {
                    out.push('⟨');
                    out.push_str(label);
                    out.push('⟩');
                }
            }
        }
        out
    }
}

impl fmt::Display for SymStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_basics() {
        let v = SymStr::lit("hello");
        assert_eq!(v.as_literal().as_deref(), Some("hello"));
        assert!(!v.may_be_empty());
        assert!(v.must_be("hello"));
        assert!(SymStr::empty().is_literal_empty());
        assert!(SymStr::lit("").is_literal_empty());
    }

    #[test]
    fn concat_merges_literals() {
        let v = SymStr::lit("a").concat(&SymStr::lit("b"));
        assert_eq!(v.segs.len(), 1);
        assert_eq!(v.as_literal().as_deref(), Some("ab"));
    }

    #[test]
    fn symbolic_regex_composition() {
        let sym = SymStr::sym(0, Regex::parse("[a-z]+").unwrap(), "$x");
        let v = SymStr::lit("pre-").concat(&sym).concat(&SymStr::lit("/*"));
        assert_eq!(v.as_literal(), None);
        assert!(v.may_be("pre-abc/*"));
        assert!(!v.may_be("pre-/*")); // the symbol is non-empty ([a-z]+)
        assert!(!v.may_be_empty());
    }

    #[test]
    fn may_be_empty_tracks_constraint() {
        let maybe = SymStr::sym(0, Regex::parse("[a-z]*").unwrap(), "$x");
        assert!(maybe.may_be_empty());
        let never = SymStr::sym(1, Regex::parse("[a-z]+").unwrap(), "$y");
        assert!(never.must_be_nonempty());
    }

    #[test]
    fn refine_and_concretize() {
        let mut v = SymStr::sym(7, Regex::parse("(/|/home)").unwrap(), "$p");
        assert!(v.refine_sym(7, &Regex::lit("/").complement()));
        v.concretize();
        assert_eq!(v.as_literal().as_deref(), Some("/home"));
    }

    #[test]
    fn refine_to_unsat() {
        let mut v = SymStr::sym(3, Regex::lit("/"), "$p");
        assert!(!v.refine_sym(3, &Regex::lit("/").complement()));
    }

    #[test]
    fn describe_uses_labels() {
        let v = SymStr::lit("x-").concat(&SymStr::sym(0, Regex::any_line(), "$HOME"));
        assert_eq!(v.describe(), "x-⟨$HOME⟩");
        assert_eq!(SymStr::lit("a b").describe(), "\"a b\"");
    }

    #[test]
    fn steam_root_shape() {
        // STEAMROOT may be "" (cd failed) or an absolute path.
        let v = SymStr::sym(
            0,
            Regex::parse("(/([^/\n]+(/[^/\n]+)*)?)?").unwrap(),
            "$STEAMROOT",
        );
        assert!(v.may_be_empty());
        assert!(v.may_be("/"));
        assert!(v.may_be("/home/jcarb/.steam"));
        let slash_star = v.concat(&SymStr::lit("/*"));
        assert!(slash_star.may_be("/*")); // the root-wipe witness
    }
}
