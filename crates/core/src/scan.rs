//! The hardened batch driver behind `shoal scan`.
//!
//! A fleet-wide scan must survive any single script: a parser bug, a
//! pathological world explosion, or an engine panic on one input must
//! not take down the batch or silently drop the other results. Each
//! script runs in a [`std::panic::catch_unwind`]-isolated worker under
//! fuel/deadline budgets ([`crate::analyze::AnalysisOptions`]); a
//! worker that panics is retried once with budgets tightened to a
//! quarter, and the outcome taxonomy
//! ([`Outcome`]) — ok / findings / parse-partial / budget-exhausted /
//! panicked — is reported per script and rolled up into the exit code.
//! Output is byte-deterministic: files are walked in sorted order and
//! diagnostics are already canonically ordered by the analyzer.

use crate::analyze::{analyze_source_resilient, AnalysisOptions, AnalysisReport};
use crate::diag::Severity;
use crate::provenance::report_json;
use crate::stats::CapReason;
use shoal_obs::json::Json;
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Once;
use std::time::Duration;

/// Batch-scan configuration. The defaults bound every script so one
/// pathological input cannot stall the batch; `None` disables a budget.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// Symbolic-step budget per script.
    pub fuel: Option<u64>,
    /// Wall-clock budget per script.
    pub deadline: Option<Duration>,
    /// Loop unrolling bound (passed through to the engine).
    pub loop_bound: usize,
    /// Maximum simultaneously-live worlds (passed through).
    pub max_worlds: usize,
    /// Worker threads for the batch (`0` = available parallelism).
    /// Results are collected in input order, so output is byte-identical
    /// to a sequential scan regardless of this setting.
    pub jobs: usize,
    /// Record per-script coverage/precision-loss maps
    /// ([`crate::AnalysisOptions::audit`]) for the fleet audit report.
    pub audit: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            fuel: Some(200_000),
            deadline: Some(Duration::from_millis(2_000)),
            loop_bound: 2,
            max_worlds: 64,
            jobs: 0,
            audit: false,
        }
    }
}

impl ScanOptions {
    fn analysis_options(&self) -> AnalysisOptions {
        AnalysisOptions {
            loop_bound: self.loop_bound,
            max_worlds: self.max_worlds,
            fuel: self.fuel,
            deadline: self.deadline,
            audit: self.audit,
            ..AnalysisOptions::default()
        }
    }

    /// Budgets for the post-panic retry: a quarter of the originals,
    /// so a script that panicked near its budget boundary gets a
    /// cheaper second chance instead of a second full-cost crash.
    fn tightened(&self) -> ScanOptions {
        ScanOptions {
            fuel: self.fuel.map(|f| (f / 4).max(1)),
            deadline: self.deadline.map(|d| d / 4),
            ..self.clone()
        }
    }
}

/// What happened to one script, in precedence order (worst last):
/// a script that both lost budget and had findings reports the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// Parsed fully, analyzed fully, no findings at warning level.
    Ok,
    /// Analysis completed and found warnings or errors.
    Findings,
    /// Some statements were skipped over syntax errors; findings cover
    /// the parsed remainder.
    ParsePartial,
    /// The fuel or deadline budget ran out; findings up to the
    /// exhaustion point are reported.
    BudgetExhausted,
    /// The worker panicked twice (once at full and once at tightened
    /// budgets); no report is available.
    Panicked,
}

impl Outcome {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Findings => "findings",
            Outcome::ParsePartial => "parse-partial",
            Outcome::BudgetExhausted => "budget-exhausted",
            Outcome::Panicked => "panicked",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A daemon-served analysis result for one script: the path-free
/// report body (exactly the fields of
/// [`crate::provenance::report_json`] minus `path`) plus the
/// pre-rendered diagnostic display lines, as returned over the
/// `shoal-jit/v1` wire protocol. The scan driver consumes it without
/// reconstructing an [`AnalysisReport`] — the daemon serialized the
/// authoritative one.
#[derive(Debug, Clone)]
pub struct RemoteReport {
    /// The report body object (`diagnostics`, `terminal_worlds`,
    /// `cap_hits`, …).
    pub body: Json,
    /// One entry per diagnostic: its full `Display` rendering (may
    /// contain embedded newlines for path conditions).
    pub text: Vec<String>,
    /// Count of diagnostics at warning severity or above.
    pub findings: usize,
}

impl RemoteReport {
    /// Builds a remote report from wire parts, classifying the outcome
    /// from the body's own fields (same taxonomy as [`Outcome`], minus
    /// `Panicked` — a daemon that panics serves nothing and the client
    /// falls back to a local, shielded run).
    pub fn classify(&self) -> Outcome {
        let budget_hit = match self.body.get("cap_hits") {
            Some(Json::Arr(hits)) => hits.iter().any(|h| {
                matches!(
                    h.get("reason").and_then(Json::as_str),
                    Some("fuel") | Some("deadline")
                )
            }),
            _ => false,
        };
        if budget_hit {
            Outcome::BudgetExhausted
        } else if self.body.get("parse_partial") == Some(&Json::Bool(true)) {
            Outcome::ParsePartial
        } else if self.findings > 0 {
            Outcome::Findings
        } else {
            Outcome::Ok
        }
    }
}

/// A hook that serves one script's analysis remotely (the JIT daemon
/// client). `None` means "unreachable / not served" — the scan driver
/// then falls back to the local panic-shielded path and marks the
/// result `local-fallback`.
pub type RemoteAnalyzer = dyn Fn(&str, &str, &AnalysisOptions) -> Option<RemoteReport> + Sync;

/// One script's scan result.
#[derive(Debug)]
pub struct ScriptResult {
    /// Path as given (files) or discovered (directory walk).
    pub path: String,
    /// Outcome classification.
    pub outcome: Outcome,
    /// The analysis report; `None` for [`Outcome::Panicked`] and for
    /// daemon-served results (which carry [`ScriptResult::remote`]).
    pub report: Option<AnalysisReport>,
    /// The daemon-served result, when `--daemon` routing served this
    /// script.
    pub remote: Option<RemoteReport>,
    /// How this script was analyzed: `None` for a plain local scan,
    /// `Some("daemon")` when the daemon served it, and
    /// `Some("local-fallback")` when daemon routing was requested but
    /// this script fell back in-process (the degradation contract:
    /// never lose a verdict, always mark the path taken).
    pub served: Option<&'static str>,
    /// The panic payload when the worker panicked (kept even when the
    /// retry succeeded, so the flake is visible).
    pub panic_message: Option<String>,
    /// The first attempt panicked and the script was re-run with
    /// tightened budgets.
    pub retried: bool,
}

/// The whole batch: per-script results plus files that could not be
/// read at all.
#[derive(Debug, Default)]
pub struct ScanSummary {
    /// Per-script results in sorted path order.
    pub results: Vec<ScriptResult>,
    /// (path, error) for files that could not be read.
    pub unreadable: Vec<(String, String)>,
}

impl ScanSummary {
    /// Count of results with a given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.results.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Exit code for the batch: 4 if anything panicked, 3 if any script
    /// was only partially analyzed (budget or parse recovery), 1 if any
    /// fully-analyzed script had findings, 0 when everything is clean.
    pub fn exit_code(&self) -> i32 {
        match self.results.iter().map(|r| r.outcome).max() {
            Some(Outcome::Panicked) => 4,
            Some(Outcome::BudgetExhausted) | Some(Outcome::ParsePartial) => 3,
            Some(Outcome::Findings) => 1,
            _ => 0,
        }
    }

    /// Deterministic human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            let findings = match (&r.report, &r.remote) {
                (Some(rep), _) => rep
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity >= Severity::Warning)
                    .count(),
                (None, Some(remote)) => remote.findings,
                (None, None) => 0,
            };
            out.push_str(&format!(
                "{}: {} ({} finding{})\n",
                r.path,
                r.outcome,
                findings,
                if findings == 1 { "" } else { "s" }
            ));
            if let Some(msg) = &r.panic_message {
                out.push_str(&format!("  panic: {msg}\n"));
                if r.retried && r.outcome != Outcome::Panicked {
                    out.push_str("  recovered on retry with tightened budgets\n");
                }
            }
            if let Some(rep) = &r.report {
                for d in &rep.diagnostics {
                    out.push_str(&format!("  {d}\n"));
                }
            } else if let Some(remote) = &r.remote {
                for line in &remote.text {
                    out.push_str(&format!("  {line}\n"));
                }
            }
        }
        for (path, err) in &self.unreadable {
            out.push_str(&format!("{path}: unreadable ({err})\n"));
        }
        out.push_str(&format!(
            "scanned {} script{}: {} ok, {} findings, {} parse-partial, {} budget-exhausted, {} panicked\n",
            self.results.len(),
            if self.results.len() == 1 { "" } else { "s" },
            self.count(Outcome::Ok),
            self.count(Outcome::Findings),
            self.count(Outcome::ParsePartial),
            self.count(Outcome::BudgetExhausted),
            self.count(Outcome::Panicked),
        ));
        out
    }

    /// `shoal-report/v1` JSON for the batch, with the scan taxonomy
    /// attached to every script entry.
    pub fn to_json(&self) -> Json {
        let mut scripts = Vec::new();
        for r in &self.results {
            let mut fields = match (&r.report, &r.remote) {
                (Some(rep), _) => match report_json(&r.path, rep) {
                    Json::Obj(fields) => fields,
                    other => vec![("report".into(), other)],
                },
                (None, Some(remote)) => {
                    // The daemon serialized the body; prepend the path
                    // so the object shape matches the local case.
                    let mut fields = vec![("path".into(), Json::Str(r.path.clone()))];
                    if let Json::Obj(body) = &remote.body {
                        fields.extend(body.iter().cloned());
                    }
                    fields
                }
                (None, None) => vec![("path".into(), Json::Str(r.path.clone()))],
            };
            fields.push(("outcome".into(), Json::Str(r.outcome.as_str().into())));
            if let Some(served) = r.served {
                fields.push(("served".into(), Json::Str(served.into())));
            }
            if let Some(msg) = &r.panic_message {
                fields.push(("panic".into(), Json::Str(msg.clone())));
            }
            fields.push(("retried".into(), Json::Bool(r.retried)));
            scripts.push(Json::Obj(fields));
        }
        Json::Obj(vec![
            ("schema".into(), Json::Str("shoal-report/v1".into())),
            ("tool".into(), Json::Str("shoal scan".into())),
            (
                "version".into(),
                Json::Str(env!("CARGO_PKG_VERSION").into()),
            ),
            ("scripts".into(), Json::Arr(scripts)),
            (
                "unreadable".into(),
                Json::Arr(
                    self.unreadable
                        .iter()
                        .map(|(p, e)| {
                            Json::Obj(vec![
                                ("path".into(), Json::Str(p.clone())),
                                ("error".into(), Json::Str(e.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("exit_code".into(), Json::Num(self.exit_code() as f64)),
        ])
    }

    /// [`ScanSummary::to_json`] with the fleet `shoal-audit/v1`
    /// document attached under an `audit` key (kept before
    /// `exit_code`, which stays the last field). Deterministic for any
    /// `--jobs`: per-script coverage is recorded under the worker's
    /// panic shield and folded here from the input-ordered results.
    pub fn to_json_audited(&self) -> Json {
        let audit = crate::audit::AuditReport::build(self);
        let mut doc = self.to_json();
        if let Json::Obj(fields) = &mut doc {
            let at = fields
                .iter()
                .position(|(k, _)| k == "exit_code")
                .unwrap_or(fields.len());
            fields.insert(at, ("audit".into(), audit.to_json()));
        }
        doc
    }

    /// [`ScanSummary::render_text`] followed by the fleet audit
    /// rendering.
    pub fn render_text_audited(&self) -> String {
        let mut out = self.render_text();
        out.push_str(&crate::audit::AuditReport::build(self).render_text());
        out
    }
}

thread_local! {
    /// Set while a worker runs under `catch_unwind`, so the process
    /// panic hook stays quiet for *expected* (isolated) panics without
    /// silencing real ones elsewhere.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that defers to the previous
/// hook except while a scan worker is running on this thread.
fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                return;
            }
            prev(info);
        }));
    });
}

fn panic_payload(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the analyzer on one script inside a panic shield.
fn run_isolated(src: &str, opts: AnalysisOptions) -> Result<AnalysisReport, String> {
    install_quiet_hook();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| analyze_source_resilient(src, opts)));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    result.map_err(panic_payload)
}

fn classify(report: &AnalysisReport) -> Outcome {
    let budget_hit = report
        .cap_hits
        .iter()
        .any(|h| matches!(h.reason, CapReason::Fuel | CapReason::Deadline));
    if budget_hit {
        Outcome::BudgetExhausted
    } else if report.parse_partial {
        Outcome::ParsePartial
    } else if report
        .diagnostics
        .iter()
        .any(|d| d.severity >= Severity::Warning)
    {
        Outcome::Findings
    } else {
        Outcome::Ok
    }
}

/// Scans one script's source: analyze under budgets in a panic shield,
/// retry once with tightened budgets on panic, classify.
pub fn scan_source(path: &str, src: &str, opts: &ScanOptions) -> ScriptResult {
    scan_source_with(path, src, opts, None)
}

/// [`scan_source`] with optional remote (daemon) routing: when `remote`
/// is given and serves the script, the local analysis is skipped
/// entirely; when it declines (daemon unreachable, error), the script
/// falls back to the usual shielded local path, marked
/// `local-fallback`.
pub fn scan_source_with(
    path: &str,
    src: &str,
    opts: &ScanOptions,
    remote: Option<&RemoteAnalyzer>,
) -> ScriptResult {
    if let Some(remote) = remote {
        if let Some(rr) = remote(path, src, &opts.analysis_options()) {
            shoal_obs::counter_add("scan.remote_served", 1);
            return ScriptResult {
                path: path.to_string(),
                outcome: rr.classify(),
                report: None,
                remote: Some(rr),
                served: Some("daemon"),
                panic_message: None,
                retried: false,
            };
        }
        shoal_obs::counter_add("scan.remote_fallback", 1);
    }
    let served = remote.map(|_| "local-fallback");
    shoal_obs::failpoint::set_context(path);
    let first = run_isolated(src, opts.analysis_options());
    let result = match first {
        Ok(report) => ScriptResult {
            path: path.to_string(),
            outcome: classify(&report),
            report: Some(report),
            remote: None,
            served,
            panic_message: None,
            retried: false,
        },
        Err(msg) => {
            shoal_obs::counter_add("scan.panics", 1);
            shoal_obs::event!("scan_panic", path = path, payload = msg.as_str());
            match run_isolated(src, opts.tightened().analysis_options()) {
                Ok(report) => ScriptResult {
                    path: path.to_string(),
                    outcome: classify(&report),
                    report: Some(report),
                    remote: None,
                    served,
                    panic_message: Some(msg),
                    retried: true,
                },
                Err(_) => ScriptResult {
                    path: path.to_string(),
                    outcome: Outcome::Panicked,
                    report: None,
                    remote: None,
                    served,
                    panic_message: Some(msg),
                    retried: true,
                },
            }
        }
    };
    shoal_obs::failpoint::set_context("");
    result
}

/// Recursively collects scripts under `roots` in sorted order.
/// Explicitly-named files are always included; directory walks filter
/// to shell scripts and skip dot-entries.
fn collect(roots: &[PathBuf], summary: &mut ScanSummary) -> Vec<(String, String)> {
    let mut scripts: Vec<(String, String)> = Vec::new();
    let mut stack: Vec<(PathBuf, bool)> = roots.iter().map(|p| (p.clone(), true)).collect();
    // Depth-first with an explicit stack; entries are pushed in reverse
    // sorted order so files come out sorted.
    stack.reverse();
    while let Some((path, explicit)) = stack.pop() {
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = match std::fs::read_dir(&path) {
                Ok(rd) => rd
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .map(|n| !n.starts_with('.'))
                            .unwrap_or(false)
                    })
                    .collect(),
                Err(e) => {
                    summary
                        .unreadable
                        .push((path.display().to_string(), e.to_string()));
                    continue;
                }
            };
            entries.sort();
            for entry in entries.into_iter().rev() {
                stack.push((entry, false));
            }
            continue;
        }
        match std::fs::read(&path) {
            Ok(bytes) => {
                let src = String::from_utf8_lossy(&bytes).into_owned();
                if explicit || crate::sniff::is_shell_script(&path, &src) {
                    scripts.push((path.display().to_string(), src));
                }
            }
            Err(e) => {
                if explicit || path.extension().and_then(|x| x.to_str()) == Some("sh") {
                    summary
                        .unreadable
                        .push((path.display().to_string(), e.to_string()));
                }
            }
        }
    }
    scripts.sort_by(|a, b| a.0.cmp(&b.0));
    scripts.dedup_by(|a, b| a.0 == b.0);
    scripts
}

/// Scans every shell script under `roots` (files or directories).
///
/// With `opts.jobs != 1` the scripts are distributed over a
/// work-stealing thread pool ([`shoal_obs::pool`]); the panic shield,
/// tightened-budget retry, and per-script failpoint context are all
/// thread-local, and [`shoal_obs::pool::map_indexed`] returns results
/// in input (= sorted path) order, so the summary — text, JSON, and
/// exit code — is byte-identical to a sequential scan.
pub fn scan_paths(roots: &[PathBuf], opts: &ScanOptions) -> ScanSummary {
    scan_paths_with(roots, opts, None)
}

/// [`scan_paths`] with optional remote (daemon) routing; see
/// [`scan_source_with`].
pub fn scan_paths_with(
    roots: &[PathBuf],
    opts: &ScanOptions,
    remote: Option<&RemoteAnalyzer>,
) -> ScanSummary {
    let mut summary = ScanSummary::default();
    let scripts = collect(roots, &mut summary);
    shoal_obs::counter_add("scan.scripts", scripts.len() as u64);
    let jobs = match opts.jobs {
        0 => shoal_obs::pool::available_parallelism(),
        n => n,
    };
    summary.results = shoal_obs::pool::map_indexed(jobs, &scripts, |_, (path, src)| {
        let _span = shoal_obs::span!("scan_script");
        scan_source_with(path, src, opts, remote)
    });
    summary.unreadable.sort();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_precedence_orders_worst_last() {
        assert!(Outcome::Ok < Outcome::Findings);
        assert!(Outcome::Findings < Outcome::ParsePartial);
        assert!(Outcome::ParsePartial < Outcome::BudgetExhausted);
        assert!(Outcome::BudgetExhausted < Outcome::Panicked);
    }

    #[test]
    fn clean_script_is_ok_with_exit_zero() {
        let r = scan_source("clean.sh", "echo hello\n", &ScanOptions::default());
        assert_eq!(r.outcome, Outcome::Ok);
        let summary = ScanSummary {
            results: vec![r],
            unreadable: Vec::new(),
        };
        assert_eq!(summary.exit_code(), 0);
        assert!(summary.render_text().contains("1 ok"));
    }

    #[test]
    fn steam_bug_is_findings_with_exit_one() {
        let src = "STEAMROOT=\"$(cd \"${0%/*}\" && echo $PWD)\"\nrm -rf \"$STEAMROOT/\"*\n";
        let r = scan_source("fig1.sh", src, &ScanOptions::default());
        assert_eq!(r.outcome, Outcome::Findings);
        let summary = ScanSummary {
            results: vec![r],
            unreadable: Vec::new(),
        };
        assert_eq!(summary.exit_code(), 1);
    }

    #[test]
    fn malformed_prefix_is_parse_partial_but_keeps_findings() {
        // Fig. 1 with a garbage first line: recovery must keep the
        // dangerous-delete finding and mark the report parse-partial.
        let src = ")\nSTEAMROOT=\"$(cd \"${0%/*}\" && echo $PWD)\"\nrm -rf \"$STEAMROOT/\"*\n";
        let r = scan_source("fig1-broken.sh", src, &ScanOptions::default());
        assert_eq!(r.outcome, Outcome::ParsePartial);
        let report = r
            .report
            .as_ref()
            .expect("parse-partial still yields a report");
        assert!(report.parse_partial);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == crate::diag::DiagCode::DangerousDelete),
            "the Steam-updater finding must survive the malformed first line"
        );
        let summary = ScanSummary {
            results: vec![r],
            unreadable: Vec::new(),
        };
        assert_eq!(summary.exit_code(), 3);
    }

    #[test]
    fn zero_deadline_is_budget_exhausted() {
        let opts = ScanOptions {
            deadline: Some(Duration::ZERO),
            ..ScanOptions::default()
        };
        let r = scan_source("slow.sh", "echo a\necho b\n", &opts);
        assert_eq!(r.outcome, Outcome::BudgetExhausted);
        let report = r.report.expect("budget exhaustion still yields a report");
        assert!(report.incomplete);
        assert!(report
            .cap_hits
            .iter()
            .any(|h| h.reason == CapReason::Deadline));
    }

    #[test]
    fn json_includes_taxonomy_fields() {
        let r = scan_source("clean.sh", "echo hello\n", &ScanOptions::default());
        let summary = ScanSummary {
            results: vec![r],
            unreadable: Vec::new(),
        };
        let json = summary.to_json().to_text();
        assert!(json.contains("\"schema\":\"shoal-report/v1\""));
        assert!(json.contains("\"outcome\":\"ok\""));
        assert!(json.contains("\"exit_code\":0"));
    }
}
