//! The incorrectness checkers.
//!
//! §4 ("Incorrectness criteria") observes that the shell lacks a
//! well-established notion of program correctness and assembles criteria
//! from the literature and bugs in the wild. The checkers here cover the
//! criteria the paper discusses concretely:
//!
//! * **dangerous deletion** ([`classify_delete`]) — a removal whose
//!   target may be `/`, empty (expanding `"$X"/*` to `/*`), or a
//!   protected ancestor: the Steam catastrophe of Figs. 1/3;
//! * **platform dependence** ([`is_platform_source`]) — values derived
//!   from `uname`/`lsb_release` steering control flow (§5);
//! * **read/write dependencies** ([`rw_deps`]) — the command-ordering
//!   information §5 says would let speculative/incremental executors
//!   (hS, Riker) skip dynamic tracing.
//!
//! Always-fails and dead-pipe checking live in the engine itself, where
//! the world state is at hand.

use crate::diag::{DiagCode, Diagnostic, Severity};
use crate::value::SymStr;
use shoal_relang::Regex;
use shoal_shparse::{Command, ListItem, Script, Span};
use shoal_spec::hoare::{operand_indices, Effect};
use shoal_spec::SpecLibrary;
use std::collections::BTreeSet;

/// How dangerous a deletion target is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeleteDanger {
    /// Definitely catastrophic (`rm -rf /*` literally).
    Certain(String),
    /// Catastrophic on some feasible execution; the payload names the
    /// condition.
    Possible(String),
}

/// Classifies one `rm`-style deletion target: `base` is the path value
/// and `glob_tail` the active glob suffix (e.g. `"/*"`), as produced by
/// field expansion.
pub fn classify_delete(base: &SymStr, glob_tail: Option<&str>) -> Option<DeleteDanger> {
    let deletes_children_of_base = matches!(glob_tail, Some(t) if t == "/*" || t == "*");
    let slash_sep = matches!(glob_tail, Some("/*"));
    if deletes_children_of_base {
        // `BASE/*`: catastrophic when BASE resolves to the root — i.e.
        // BASE may be "", "/", or (for a bare `*` tail) end with "/".
        if let Some(text) = base.as_literal() {
            let effective = if slash_sep {
                format!("{text}/")
            } else {
                text.clone()
            };
            let norm = shoal_symfs::normalize_lexical(&effective);
            if norm == "/" {
                return Some(DeleteDanger::Certain(format!(
                    "deletes every child of / (target expands to {:?})",
                    format!("{text}{}", glob_tail.unwrap_or(""))
                )));
            }
            return None;
        }
        let lang = base.to_regex();
        if base.may_be_empty() {
            return Some(DeleteDanger::Possible(
                "the path before the glob may expand to the empty string, making the target /*"
                    .to_string(),
            ));
        }
        if lang.matches(b"/") {
            return Some(DeleteDanger::Possible(
                "the path before the glob may be \"/\", making the target //*".to_string(),
            ));
        }
        return None;
    }
    // Whole-tree deletion of the target itself.
    let lang = base.to_regex();
    if let Some(text) = base.as_literal() {
        if shoal_symfs::normalize_lexical(&text) == "/" {
            return Some(DeleteDanger::Certain(
                "deletes the file-system root".to_string(),
            ));
        }
        return None;
    }
    // A bare, unconstrained variable (`rm -rf "$1"`) is not flagged:
    // nothing in the script narrows it toward "/", and warning on every
    // variable deletion would be exactly the syntactic noise the paper
    // criticizes. Danger requires evidence: a narrowed constraint or a
    // composite value (e.g. `"$X"/` with possibly-empty `$X`).
    if let Some((_, c)) = base.as_single_sym() {
        if c.equiv(&Regex::any_line()) || c.equiv(&Regex::anything()) {
            return None;
        }
    }
    if lang.matches(b"/") {
        return Some(DeleteDanger::Possible(
            "the target may expand to \"/\"".to_string(),
        ));
    }
    None
}

/// Builds the dangerous-delete diagnostic.
pub fn delete_diag(danger: DeleteDanger, target_desc: &str, span: Span) -> Diagnostic {
    let (severity, detail) = match danger {
        DeleteDanger::Certain(d) => (Severity::Error, d),
        DeleteDanger::Possible(d) => (Severity::Error, d),
    };
    Diagnostic::new(
        DiagCode::DangerousDelete,
        severity,
        span,
        format!("rm may delete everything user-writable: {detail} (target: {target_desc})"),
    )
    .with_origin("checker:delete")
}

/// Does a symbol label mark a platform-dependent source (`uname`,
/// `lsb_release`, `sw_vers`)?
pub fn is_platform_source(label: &str) -> bool {
    ["uname", "lsb_release", "sw_vers", "ostype", "OSTYPE"]
        .iter()
        .any(|s| label.contains(s))
}

/// One read/write dependency edge between two commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// Line of the earlier command.
    pub from_line: u32,
    /// Line of the later command.
    pub to_line: u32,
    /// The path both touch.
    pub path: String,
    /// `"write→read"`, `"write→write"`, or `"read→write"`.
    pub kind: &'static str,
}

/// Extracts read/write dependency edges between the simple commands of a
/// straight-line script, using spec effects on literal arguments. §5:
/// with this information "speculative execution systems like hS \\[can\\]
/// reorder commands without needing to guard against misspeculation".
pub fn rw_deps(script: &Script, specs: &SpecLibrary) -> Vec<DepEdge> {
    #[derive(Debug)]
    struct Access {
        line: u32,
        path: String,
        write: bool,
    }
    let mut accesses: Vec<Access> = Vec::new();
    fn visit(items: &[ListItem], specs: &SpecLibrary, accesses: &mut Vec<Access>) {
        for item in items {
            let mut pipelines = vec![&item.and_or.first];
            pipelines.extend(item.and_or.rest.iter().map(|(_, p)| p));
            for p in pipelines {
                for c in &p.commands {
                    if let Command::Simple(sc) = c {
                        let Some(name) = sc.name_literal() else {
                            continue;
                        };
                        let Some(spec) = specs.get(&name) else {
                            continue;
                        };
                        let args: Vec<String> = sc.words[1..]
                            .iter()
                            .filter_map(|w| w.as_literal())
                            .collect();
                        if args.len() + 1 < sc.words.len() {
                            continue; // Non-literal args: skip, stay sound.
                        }
                        let Ok(inv) = spec.syntax.classify(&args) else {
                            continue;
                        };
                        let mut reads: BTreeSet<usize> = BTreeSet::new();
                        let mut writes: BTreeSet<usize> = BTreeSet::new();
                        for case in spec.applicable(&inv) {
                            for e in &case.effects {
                                match e {
                                    Effect::Reads(i) => {
                                        reads.extend(operand_indices(*i, inv.operands.len()))
                                    }
                                    Effect::Writes(i)
                                    | Effect::Deletes(i)
                                    | Effect::DeletesChildren(i)
                                    | Effect::CreatesFile(i)
                                    | Effect::CreatesDir(i)
                                    | Effect::CreatesDirChain(i) => {
                                        writes.extend(operand_indices(*i, inv.operands.len()))
                                    }
                                    Effect::CopiesTo { src, dst } => {
                                        reads.extend(operand_indices(*src, inv.operands.len()));
                                        writes.extend(operand_indices(*dst, inv.operands.len()));
                                    }
                                    Effect::MovesTo { src, dst } => {
                                        writes.extend(operand_indices(*src, inv.operands.len()));
                                        writes.extend(operand_indices(*dst, inv.operands.len()));
                                    }
                                    _ => {}
                                }
                            }
                        }
                        for &i in reads.iter() {
                            if let Some(p) = inv.operands.get(i) {
                                accesses.push(Access {
                                    line: sc.span.line,
                                    path: p.clone(),
                                    write: false,
                                });
                            }
                        }
                        for &i in writes.iter() {
                            if let Some(p) = inv.operands.get(i) {
                                accesses.push(Access {
                                    line: sc.span.line,
                                    path: p.clone(),
                                    write: true,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    visit(&script.items, specs, &mut accesses);
    let mut edges = Vec::new();
    for (i, a) in accesses.iter().enumerate() {
        for b in accesses[i + 1..].iter() {
            if a.path != b.path || a.line == b.line {
                continue;
            }
            let kind = match (a.write, b.write) {
                (true, false) => "write→read",
                (true, true) => "write→write",
                (false, true) => "read→write",
                (false, false) => continue,
            };
            let edge = DepEdge {
                from_line: a.line,
                to_line: b.line,
                path: a.path.clone(),
                kind,
            };
            if !edges.contains(&edge) {
                edges.push(edge);
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoal_shparse::parse_script;

    #[test]
    fn literal_root_wipe_is_certain() {
        let base = SymStr::lit("/");
        assert!(matches!(
            classify_delete(&base, None),
            Some(DeleteDanger::Certain(_))
        ));
        let empty = SymStr::empty();
        assert!(matches!(
            classify_delete(&empty, Some("/*")),
            Some(DeleteDanger::Certain(_))
        ));
    }

    #[test]
    fn safe_literal_deletes() {
        assert_eq!(
            classify_delete(&SymStr::lit("/home/u/.steam"), Some("/*")),
            None
        );
        assert_eq!(classify_delete(&SymStr::lit("/tmp/build"), None), None);
    }

    #[test]
    fn maybe_empty_base_is_possible_danger() {
        let base = SymStr::sym(
            0,
            Regex::parse_must("(/([^/\n]+(/[^/\n]+)*)?)?"),
            "$STEAMROOT",
        );
        let danger = classify_delete(&base, Some("/*"));
        assert!(matches!(danger, Some(DeleteDanger::Possible(_))));
    }

    #[test]
    fn constrained_nonempty_base_is_safe() {
        // Fig. 2's then-branch: the symbol can no longer be "" or "/".
        let base = SymStr::sym(0, Regex::parse_must("/[^/\n]+(/[^/\n]+)*"), "$STEAMROOT");
        assert_eq!(classify_delete(&base, Some("/*")), None);
    }

    #[test]
    fn may_be_slash_is_danger() {
        let base = SymStr::sym(0, Regex::parse_must("/([^/\n]+)?"), "$p");
        assert!(classify_delete(&base, Some("/*")).is_some());
        assert!(classify_delete(&base, None).is_some());
    }

    #[test]
    fn platform_sources() {
        assert!(is_platform_source("$(uname -s)"));
        assert!(is_platform_source("$(lsb_release -a)"));
        assert!(!is_platform_source("$HOME"));
    }

    #[test]
    fn rw_deps_extraction() {
        let script = parse_script("touch /tmp/a\ncat /tmp/a\nrm /tmp/a\ncat /tmp/other\n").unwrap();
        let specs = SpecLibrary::builtin();
        let edges = rw_deps(&script, &specs);
        // touch(write) → cat(read) on /tmp/a.
        assert!(edges.iter().any(|e| e.kind == "write→read"
            && e.path == "/tmp/a"
            && e.from_line == 1
            && e.to_line == 2));
        // cat(read) → rm(write) on /tmp/a.
        assert!(edges
            .iter()
            .any(|e| e.kind == "read→write" && e.from_line == 2 && e.to_line == 3));
        // No edge to the unrelated file.
        assert!(!edges.iter().any(|e| e.path == "/tmp/other"));
    }
}
