//! End-to-end tests of inline `#@` annotations (§4 "Ergonomic
//! annotations"): the same script is unsafe without annotations and
//! provably safe with them — with zero impact on how any real shell
//! executes it.

use shoal_core::{analyze_source, DiagCode};

#[test]
fn var_annotation_discharges_danger() {
    // Without the annotation, $INSTALL_ROOT is just an environment
    // variable that may be empty.
    let unannotated = "rm -rf \"$INSTALL_ROOT\"/*\n";
    let report = analyze_source(unannotated).unwrap();
    assert!(
        report.has(DiagCode::DangerousDelete),
        "an unconstrained env var followed by /* is the Fig. 1 shape"
    );
    // With the annotation, the variable is a non-root absolute path.
    let annotated = "#@ var INSTALL_ROOT : /opt/[^/]+\nrm -rf \"$INSTALL_ROOT\"/*\n";
    let report = analyze_source(annotated).unwrap();
    assert!(
        !report.has(DiagCode::DangerousDelete),
        "the annotation rules out the empty/root expansion: {:#?}",
        report.with_code(DiagCode::DangerousDelete)
    );
}

#[test]
fn cmd_annotation_types_unknown_pipeline_stage() {
    // `mystery-gen` has no spec; without an annotation the pipeline is
    // untypable and no dead pipe can be found.
    let unannotated = "mystery-gen | grep '^desc'\n";
    let report = analyze_source(unannotated).unwrap();
    assert!(!report.has(DiagCode::DeadPipe));
    // The annotation supplies its output type; now the dead filter shows.
    let annotated = "\
#@ cmd mystery-gen :: any -> (Distributor ID|Description):\\t.*
mystery-gen | grep '^desc'
";
    let report = analyze_source(annotated).unwrap();
    assert!(
        report.has(DiagCode::DeadPipe),
        "the annotated producer type exposes the impossible filter: {:#?}",
        report.diagnostics
    );
}

#[test]
fn type_definitions_are_reusable() {
    let src = "\
#@ type distro-line = (Distributor ID|Description|Release|Codename):\\t.*
#@ cmd my-lsb :: any -> distro-line
my-lsb | grep '^desc'
";
    let report = analyze_source(src).unwrap();
    assert!(report.has(DiagCode::DeadPipe));
    // And the corrected filter passes.
    let fixed = src.replace("'^desc'", "'^Desc'");
    let report = analyze_source(&fixed).unwrap();
    assert!(!report.has(DiagCode::DeadPipe));
}

#[test]
fn malformed_annotation_is_a_note_not_a_failure() {
    let src = "#@ var broken\necho ok\n";
    let report = analyze_source(src).unwrap();
    assert!(report.has(DiagCode::AnalysisIncomplete));
    // The analysis itself still ran.
    assert!(report.paths_completed >= 1);
}

#[test]
fn annotations_do_not_change_executability() {
    // The annotated script parses identically for the shell: the
    // annotation is in a comment.
    let src = "#@ var X : hex\necho \"$X\"\n";
    let ast = shoal_shparse::parse_script(src).unwrap();
    assert_eq!(ast.items.len(), 1);
}
