//! Idempotence checking (§4: "the CoLiS project reveals idempotence as
//! an important criterion for software installation scripts").

use shoal_core::{analyze_source, DiagCode};

#[test]
fn mkdir_without_p_is_not_idempotent() {
    // First run: /opt/app is absent, mkdir succeeds and creates it.
    // Second run: it exists, mkdir fails.
    let report = analyze_source("mkdir /opt/app\ntouch /opt/app/done\n").unwrap();
    assert!(
        report.has(DiagCode::IdempotenceRisk),
        "got: {:#?}",
        report.diagnostics
    );
}

#[test]
fn mkdir_p_is_idempotent() {
    let report = analyze_source("mkdir -p /opt/app\ntouch /opt/app/done\n").unwrap();
    assert!(
        !report.has(DiagCode::IdempotenceRisk),
        "got: {:#?}",
        report.with_code(DiagCode::IdempotenceRisk)
    );
}

#[test]
fn plain_rm_of_consumed_file_is_not_idempotent() {
    // `rm /tmp/queue/job` succeeds only while the file exists; the
    // script deletes it, so the second run fails.
    let report = analyze_source("rm /tmp/queue/job\n").unwrap();
    assert!(
        report.has(DiagCode::IdempotenceRisk),
        "got: {:#?}",
        report.diagnostics
    );
}

#[test]
fn rm_f_is_idempotent() {
    let report = analyze_source("rm -f /tmp/queue/job\n").unwrap();
    assert!(!report.has(DiagCode::IdempotenceRisk));
}

#[test]
fn touch_is_idempotent() {
    // touch succeeds whether or not the file exists.
    let report = analyze_source("touch /var/run/stamp\n").unwrap();
    assert!(
        !report.has(DiagCode::IdempotenceRisk),
        "got: {:#?}",
        report.with_code(DiagCode::IdempotenceRisk)
    );
}

#[test]
fn create_then_cleanup_is_idempotent() {
    // The script restores the state it consumed: no risk.
    let report = analyze_source("mkdir /tmp/scratch\nrm -rf /tmp/scratch\n").unwrap();
    assert!(
        !report.has(DiagCode::IdempotenceRisk),
        "got: {:#?}",
        report.with_code(DiagCode::IdempotenceRisk)
    );
}
