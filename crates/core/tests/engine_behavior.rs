//! Behavioral tests for the symbolic executor: composition primitives,
//! built-ins, conditionals, loops, case matching, functions, and the
//! world-forking semantics.

use shoal_core::engine::Engine;
use shoal_core::{analyze_source, AnalysisOptions, DiagCode, ExitStatus, World};
use shoal_shparse::parse_script;

fn run(src: &str) -> Vec<World> {
    let engine = Engine::new(AnalysisOptions::default());
    let script = parse_script(src).unwrap();
    engine.exec_items(vec![World::initial()], &script.items)
}

fn one(src: &str) -> World {
    let mut worlds = run(src);
    assert_eq!(worlds.len(), 1, "expected one world for {src:?}");
    worlds.pop().unwrap()
}

#[test]
fn assignment_and_lookup() {
    let w = one("x=hello");
    assert_eq!(
        w.get_var("x").unwrap().as_literal().as_deref(),
        Some("hello")
    );
    assert_eq!(w.last_exit, ExitStatus::Zero);
}

#[test]
fn assignment_concatenation() {
    let w = one("a=foo\nb=\"$a-bar\"");
    assert_eq!(
        w.get_var("b").unwrap().as_literal().as_deref(),
        Some("foo-bar")
    );
}

#[test]
fn true_false_exit_status() {
    assert_eq!(one("true").last_exit, ExitStatus::Zero);
    assert_eq!(one("false").last_exit, ExitStatus::NonZero);
    assert_eq!(one("! false").last_exit, ExitStatus::Zero);
}

#[test]
fn and_or_short_circuit() {
    // false && x=1 — the assignment never runs.
    let w = one("false && x=1");
    assert!(w.get_var("x").is_none());
    let w2 = one("false || x=2");
    assert_eq!(w2.get_var("x").unwrap().as_literal().as_deref(), Some("2"));
    let w3 = one("true && x=3");
    assert_eq!(w3.get_var("x").unwrap().as_literal().as_deref(), Some("3"));
}

#[test]
fn exit_halts_execution() {
    let w = one("x=1\nexit 1\nx=2");
    assert_eq!(w.get_var("x").unwrap().as_literal().as_deref(), Some("1"));
    assert!(w.halted);
    assert_eq!(w.last_exit, ExitStatus::NonZero);
}

#[test]
fn if_on_concrete_condition() {
    let w = one("if true; then x=t; else x=e; fi");
    assert_eq!(w.get_var("x").unwrap().as_literal().as_deref(), Some("t"));
    let w2 = one("if false; then x=t; else x=e; fi");
    assert_eq!(w2.get_var("x").unwrap().as_literal().as_deref(), Some("e"));
}

#[test]
fn if_without_else_sets_zero_status() {
    let w = one("if false; then x=t; fi");
    assert!(w.get_var("x").is_none());
    assert_eq!(w.last_exit, ExitStatus::Zero);
}

#[test]
fn elif_chain() {
    let w = one("if false; then x=a; elif true; then x=b; else x=c; fi");
    assert_eq!(w.get_var("x").unwrap().as_literal().as_deref(), Some("b"));
}

#[test]
fn test_equality_refines_both_branches() {
    // `$1` is symbolic: both branches run, each with a refined world.
    let worlds = run("if [ \"$1\" = \"on\" ]; then x=yes; else x=no; fi");
    assert_eq!(worlds.len(), 2);
    let yes = worlds
        .iter()
        .find(|w| w.get_var("x").and_then(|v| v.as_literal()).as_deref() == Some("yes"));
    let no = worlds
        .iter()
        .find(|w| w.get_var("x").and_then(|v| v.as_literal()).as_deref() == Some("no"));
    assert!(yes.is_some() && no.is_some());
    // In the yes-world, $1 is pinned to "on".
    let mut yes = yes.unwrap().clone();
    assert_eq!(yes.param("1").unwrap().as_literal().as_deref(), Some("on"));
    // In the no-world, $1 can no longer be "on".
    let mut no = no.unwrap().clone();
    assert!(!no.param("1").unwrap().may_be("on"));
}

#[test]
fn repeated_tests_of_same_variable_collapse() {
    // After the first fork, refinement decides subsequent tests: path
    // count stays at 2 (the E9 pruning claim).
    let src = "if [ \"$1\" = on ]; then a=1; fi\nif [ \"$1\" = on ]; then b=1; fi\n";
    let worlds = run(src);
    assert_eq!(worlds.len(), 2);
    for w in &worlds {
        // a and b agree in every world.
        assert_eq!(w.get_var("a").is_some(), w.get_var("b").is_some());
    }
}

#[test]
fn test_z_and_n() {
    let w = one("x=nonempty\nif [ -z \"$x\" ]; then r=empty; else r=full; fi");
    assert_eq!(
        w.get_var("r").unwrap().as_literal().as_deref(),
        Some("full")
    );
    let w2 = one("x=\"\"\nif [ -n \"$x\" ]; then r=full; else r=empty; fi");
    assert_eq!(
        w2.get_var("r").unwrap().as_literal().as_deref(),
        Some("empty")
    );
}

#[test]
fn test_numeric_comparisons() {
    let w = one("if [ 3 -lt 5 ]; then r=lt; fi");
    assert_eq!(w.get_var("r").unwrap().as_literal().as_deref(), Some("lt"));
    let w2 = one("if [ 5 -le 4 ]; then r=yes; else r=no; fi");
    assert_eq!(w2.get_var("r").unwrap().as_literal().as_deref(), Some("no"));
}

#[test]
fn test_file_predicates_fork_fs() {
    // Three worlds: file (true), absent (false), directory (false).
    let worlds = run("if [ -f /etc/app.conf ]; then r=have; else r=none; fi");
    assert_eq!(worlds.len(), 3);
    // The knowledge persists: a second check is decided.
    let worlds2 = run("if [ -f /etc/app.conf ]; then r=have; else r=none; fi\n\
         if [ -f /etc/app.conf ]; then s=have; else s=none; fi");
    assert_eq!(worlds2.len(), 3, "second test must not re-fork");
    for w in &worlds2 {
        assert_eq!(
            w.get_var("r").unwrap().as_literal(),
            w.get_var("s").unwrap().as_literal()
        );
    }
}

#[test]
fn case_literal_subject() {
    let w = one("x=b\ncase $x in a) r=A ;; b) r=B ;; *) r=other ;; esac");
    assert_eq!(w.get_var("r").unwrap().as_literal().as_deref(), Some("B"));
}

#[test]
fn case_default_arm() {
    let w = one("x=zzz\ncase $x in a) r=A ;; b) r=B ;; *) r=other ;; esac");
    assert_eq!(
        w.get_var("r").unwrap().as_literal().as_deref(),
        Some("other")
    );
}

#[test]
fn case_glob_pattern() {
    let w = one("x=\"Arch Linux\"\ncase \"$x\" in *Linux) r=linux ;; *) r=other ;; esac");
    assert_eq!(
        w.get_var("r").unwrap().as_literal().as_deref(),
        Some("linux")
    );
}

#[test]
fn case_symbolic_subject_forks_with_refinement() {
    let worlds = run("case \"$1\" in on) r=on ;; off) r=off ;; *) r=other ;; esac");
    assert_eq!(worlds.len(), 3);
    let on_world = worlds
        .iter()
        .find(|w| w.get_var("r").and_then(|v| v.as_literal()).as_deref() == Some("on"))
        .unwrap();
    let mut on_world = on_world.clone();
    assert_eq!(
        on_world.param("1").unwrap().as_literal().as_deref(),
        Some("on")
    );
}

#[test]
fn case_no_match_exits_zero() {
    let w = one("x=q\ncase $x in a) r=A ;; esac");
    assert!(w.get_var("r").is_none());
    assert_eq!(w.last_exit, ExitStatus::Zero);
}

#[test]
fn for_loop_iterates_literals() {
    let w = one("acc=\"\"\nfor i in 1 2 3; do acc=\"$acc$i\"; done");
    assert_eq!(
        w.get_var("acc").unwrap().as_literal().as_deref(),
        Some("123")
    );
}

#[test]
fn while_loop_with_concrete_exit() {
    // `while false` never runs the body.
    let w = one("x=keep\nwhile false; do x=changed; done");
    assert_eq!(
        w.get_var("x").unwrap().as_literal().as_deref(),
        Some("keep")
    );
}

#[test]
fn unbounded_loop_widens_assigned_vars() {
    // A loop the engine cannot bound: the assigned variable is havocked,
    // and analysis terminates.
    let worlds = run("while [ \"$1\" = go ]; do counter=more; done");
    assert!(!worlds.is_empty());
    // Some world went through widening: counter exists but is symbolic.
    let widened = worlds.iter().any(|w| {
        w.get_var("counter")
            .is_some_and(|v| v.as_literal().is_none())
    });
    assert!(widened);
}

#[test]
fn function_definition_and_call() {
    let w = one("greet() { r=\"hi $1\"; }\ngreet world");
    assert_eq!(
        w.get_var("r").unwrap().as_literal().as_deref(),
        Some("hi world")
    );
}

#[test]
fn function_positional_params_restored() {
    let mut w = one("f() { inner=$1; }\nf abc");
    assert_eq!(
        w.get_var("inner").unwrap().as_literal().as_deref(),
        Some("abc")
    );
    // Outside the function, $1 is the script's own (symbolic) argument.
    assert!(w.param("1").unwrap().as_literal().is_none());
}

#[test]
fn recursion_is_bounded() {
    let worlds = run("f() { f; }\nf");
    assert!(!worlds.is_empty(), "recursive function must not hang");
}

#[test]
fn subshell_isolates_cwd() {
    // Two worlds (cd succeeded/failed inside the subshell); in both,
    // the parent's cwd is untouched.
    let worlds = run("(cd /tmp)\npwd");
    assert!(!worlds.is_empty());
    for w in &worlds {
        assert_ne!(w.cwd.as_literal().as_deref(), Some("/tmp"));
    }
}

#[test]
fn cd_changes_cwd_in_parent() {
    let worlds = run("cd /srv/data");
    let success = worlds
        .iter()
        .find(|w| w.cwd.as_literal().as_deref() == Some("/srv/data"));
    assert!(success.is_some());
}

#[test]
fn cd_relative_from_known_cwd() {
    let worlds = run("cd /srv\ncd data");
    let success = worlds
        .iter()
        .find(|w| w.cwd.as_literal().as_deref() == Some("/srv/data"));
    assert!(success.is_some());
}

#[test]
fn shift_drops_positionals() {
    let mut w = one("set_ignore=1"); // Warm-up world.
    let _ = &mut w;
    let worlds = run("x=$1\nshift\ny=$1\n");
    // $1 after shift is the old $2: distinct symbols.
    for mut w in worlds {
        let x = w.get_var("x").cloned().unwrap();
        let y = w.get_var("y").cloned().unwrap();
        assert_ne!(x, y);
        let _ = w.param("1");
    }
}

#[test]
fn unset_removes_variable() {
    let w = one("x=1\nunset x");
    assert!(w.get_var("x").is_none());
}

#[test]
fn read_binds_symbolic_value() {
    let w = one("read -r line");
    assert!(w.get_var("line").is_some());
    assert!(w.get_var("line").unwrap().as_literal().is_none());
}

#[test]
fn background_jobs_do_not_block_status() {
    let w = one("sleep_like_cmd & x=after");
    assert_eq!(
        w.get_var("x").unwrap().as_literal().as_deref(),
        Some("after")
    );
}

#[test]
fn eval_reports_incompleteness() {
    let report = analyze_source("eval \"$cmd\"").unwrap();
    assert!(report.has(DiagCode::AnalysisIncomplete));
}

#[test]
fn pipeline_exit_is_last_command() {
    let w = one("false | true");
    assert_eq!(w.last_exit, ExitStatus::Zero);
}

#[test]
fn deleted_file_stays_deleted_across_branches() {
    // Deletion in both branches of an if: the file is gone afterwards.
    let src = "touch /tmp/f\nif [ \"$1\" = a ]; then rm /tmp/f; else rm /tmp/f; fi\ncat /tmp/f\n";
    let report = analyze_source(src).unwrap();
    assert!(report.has(DiagCode::AlwaysFails));
}

#[test]
fn mkdir_then_cd_then_relative_touch() {
    let src = "mkdir -p /work/project\ncd /work/project\ntouch build.log\ncat build.log\n";
    let report = analyze_source(src).unwrap();
    assert!(
        !report.has(DiagCode::AlwaysFails),
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn world_cap_reports_incomplete() {
    let src = shoal_corpus_like_branchy(10);
    let report = shoal_core::analyze_source_with(
        &src,
        AnalysisOptions {
            max_worlds: 8,
            ..AnalysisOptions::default()
        },
    )
    .unwrap();
    assert!(report.incomplete);
}

/// Ten branches over independent variables (like corpus::scale, inlined
/// to keep this test self-contained).
fn shoal_corpus_like_branchy(k: usize) -> String {
    let mut out = String::new();
    for i in 0..k {
        let n = i + 1;
        out.push_str(&format!(
            "if [ \"${n}\" = on ]; then echo y{i}; else echo n{i}; fi\n"
        ));
    }
    out
}

#[test]
fn maybe_empty_cd_target_noted() {
    // `cd $dir` with an unconstrained variable may expand empty.
    let report = analyze_source("cd \"$1\"\n").unwrap();
    assert!(report.has(DiagCode::MaybeEmptyExpansion));
    // A literal target never triggers the note.
    let report2 = analyze_source("cd /tmp\n").unwrap();
    assert!(!report2.has(DiagCode::MaybeEmptyExpansion));
    // A value proven non-empty never triggers it either.
    let report3 = analyze_source("if [ -n \"$1\" ]; then cd \"$1\"; fi\n").unwrap();
    assert!(
        !report3.has(DiagCode::MaybeEmptyExpansion),
        "got: {:#?}",
        report3.with_code(DiagCode::MaybeEmptyExpansion)
    );
}
