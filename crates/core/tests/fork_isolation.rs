//! Property test for the copy-on-write world representation: a fork is
//! `World::clone()`, and the structural sharing behind it (`CowMap`,
//! `CowVec`, `CowList`, the symbolic-FS `Pmap`) must make that clone a
//! *logical* deep copy — no mutation of the child may ever be observable
//! in the parent, no matter how the two interleave.

use shoal_core::{Diagnostic, DiagCode, Severity, World};
use shoal_obs::prop::{run_cases, Gen};
use shoal_shparse::Span;
use shoal_symfs::{FsKey, NodeState};

/// One random world mutation through the public API, touching every
/// Arc-shared field: vars, positional, trail, diags, FS entries and
/// assumptions, fragile assumptions, functions, symbol bases.
fn mutate(g: &mut Gen, w: &mut World, tag: &str) {
    let key = FsKey::absolute(&format!("/tmp/{}/{}", tag, g.usize(0..4))).unwrap();
    match g.usize(0..8) {
        0 => {
            let name = format!("V{}", g.usize(0..5));
            let val = w.fresh_sym(shoal_relang::Regex::anything(), &format!("{tag}-var"));
            w.set_var(&name, val);
        }
        1 => w.assume(format!("{tag} assumed #{}", g.usize(0..100))),
        2 => w.report(Diagnostic::new(
            DiagCode::DangerousDelete,
            Severity::Warning,
            Span::new(0, 1, (g.usize(0..9) + 1) as u32),
            format!("{tag} diag"),
        )),
        3 => {
            let state = *g.pick(&[NodeState::File, NodeState::Dir, NodeState::Absent]);
            w.fs.set(&key, state);
        }
        4 => w.fs.delete_tree(&key),
        5 => {
            let _ = w.fs.require(&key, NodeState::File);
        }
        6 => {
            let id = w.fresh_sym_id();
            let _ = w.base_for_sym(id);
        }
        _ => {
            let _ = w.param(&format!("{}", g.usize(1..6)));
        }
    }
}

/// A stable observable snapshot of a world. `World` derives `Debug`
/// exhaustively (all fields), so the formatted form pins down every
/// piece of state a mutation could leak into.
fn snapshot(w: &World) -> String {
    format!("{w:?}")
}

#[test]
fn forked_world_mutations_never_leak_into_parent() {
    run_cases("forked_world_mutations_never_leak_into_parent", 64, |g| {
        // Build a random parent first, so the fork happens on shared,
        // non-trivial structures.
        let mut parent = World::initial();
        for i in 0..g.usize(1..12) {
            mutate(g, &mut parent, &format!("p{i}"));
        }
        let before = snapshot(&parent);

        // Fork (exactly what the engine does), then mutate child and
        // parent in random interleaving: writes on either side must not
        // surface on the other retroactively.
        let mut child = parent.clone();
        assert_eq!(snapshot(&child), before, "a fork starts identical");
        let mut expected_parent = before;
        for i in 0..g.usize(1..16) {
            if g.bool() {
                mutate(g, &mut child, &format!("c{i}"));
            } else {
                mutate(g, &mut parent, &format!("q{i}"));
                expected_parent = snapshot(&parent);
            }
            assert_eq!(
                snapshot(&parent),
                expected_parent,
                "child mutation leaked into the parent"
            );
        }

        // The child carries everything the parent had at fork time.
        for (name, val) in parent.vars.iter() {
            if !name.starts_with('V') {
                // Non-random vars (HOME etc.) only change via mutate's
                // tagged writes, so untouched ones must still agree.
                assert_eq!(
                    child.get_var(name).map(|v| format!("{v:?}")),
                    Some(format!("{val:?}")),
                    "untouched var {name} diverged"
                );
            }
        }
    });
}
