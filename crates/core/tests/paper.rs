//! End-to-end reproduction of the paper's examples: the analyzer must
//! flag Fig. 1 and Fig. 3, prove Fig. 2 safe, catch Fig. 5's dead pipe,
//! be robust to the §3 syntactic variant, and detect the §4 rm/cat
//! always-fails composition.

use shoal_core::{analyze_source, DiagCode};

/// Fig. 1: the Steam updater bug.
const FIG1: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
rm -fr "$STEAMROOT"/*
"#;

/// Fig. 2: the obviously safe fix.
const FIG2: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
    rm -fr "$STEAMROOT"/*
else
    echo "Bad script path: $0"; exit 1
fi
"#;

/// Fig. 3: the obviously unsafe fix (one character from Fig. 2).
const FIG3: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" = "/" ]; then
    rm -fr "$STEAMROOT"/*
else
    echo "Bad script path: $0"; exit 1
fi
"#;

/// Fig. 5: the platform-suffix fix with the dead `grep '^desc'`.
const FIG5: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
"#;

#[test]
fn fig1_dangerous_delete_detected() {
    let report = analyze_source(FIG1).unwrap();
    let danger = report.with_code(DiagCode::DangerousDelete);
    assert!(
        !danger.is_empty(),
        "Fig. 1 must be flagged; got: {:#?}",
        report.diagnostics
    );
    // The warning points at the rm line.
    assert_eq!(danger[0].span.line, 3);
}

#[test]
fn fig2_safe_fix_is_clean() {
    let report = analyze_source(FIG2).unwrap();
    let danger = report.with_code(DiagCode::DangerousDelete);
    assert!(
        danger.is_empty(),
        "Fig. 2 is guaranteed safe across all executions; got: {:#?}",
        danger
    );
}

#[test]
fn fig3_unsafe_fix_detected() {
    let report = analyze_source(FIG3).unwrap();
    assert!(
        report.has(DiagCode::DangerousDelete),
        "Fig. 3 guards the rm with exactly the wrong condition; got: {:#?}",
        report.diagnostics
    );
}

#[test]
fn fig5_dead_pipe_detected() {
    let report = analyze_source(FIG5).unwrap();
    assert!(
        report.has(DiagCode::DeadPipe),
        "Fig. 5's grep '^desc' can never match lsb_release output; got: {:#?}",
        report.diagnostics
    );
}

#[test]
fn fig5_corrected_filter_no_dead_pipe() {
    let fixed = FIG5.replace("'^desc'", "'^Desc'");
    let report = analyze_source(&fixed).unwrap();
    assert!(
        !report.has(DiagCode::DeadPipe),
        "corrected ^Desc filter passes the Description line; got: {:#?}",
        report.with_code(DiagCode::DeadPipe)
    );
}

#[test]
fn variant_split_across_variables_detected() {
    // §3 "Key takeaways": robust to `c="/*"; rm -fr $STEAMROOT$c`.
    let src = r#"STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
c="/*"
rm -fr $STEAMROOT$c
"#;
    let report = analyze_source(src).unwrap();
    assert!(
        report.has(DiagCode::DangerousDelete),
        "the split-variable variant must be flagged; got: {:#?}",
        report.diagnostics
    );
}

#[test]
fn rm_then_cat_always_fails() {
    // §4: after `rm -r "$1"`, `cat "$1"/config` can never succeed.
    let src = "rm -r \"$1\"\ncat \"$1\"/config\n";
    let report = analyze_source(src).unwrap();
    assert!(
        report.has(DiagCode::AlwaysFails),
        "cat after rm -r of the same root must always fail; got: {:#?}",
        report.diagnostics
    );
}

#[test]
fn rm_then_cat_unrelated_is_clean() {
    let src = "rm -r \"$1\"\ncat \"$2\"/config\n";
    let report = analyze_source(src).unwrap();
    assert!(
        !report.has(DiagCode::AlwaysFails),
        "different operands must not alias; got: {:#?}",
        report.with_code(DiagCode::AlwaysFails)
    );
}

#[test]
fn literal_rm_rf_root_detected() {
    let report = analyze_source("rm -rf /\n").unwrap();
    assert!(report.has(DiagCode::DangerousDelete));
    let report2 = analyze_source("rm -rf /*\n").unwrap();
    assert!(report2.has(DiagCode::DangerousDelete));
}

#[test]
fn safe_literal_rm_is_clean() {
    let report = analyze_source("rm -rf /tmp/build\n").unwrap();
    assert!(!report.has(DiagCode::DangerousDelete));
    let report2 = analyze_source("rm -rf \"$HOME/.cache/thing\"\n").unwrap();
    assert!(
        !report2.has(DiagCode::DangerousDelete),
        "got: {:#?}",
        report2.with_code(DiagCode::DangerousDelete)
    );
}

#[test]
fn guarded_by_test_n_is_clean() {
    // A guard that rules out the empty expansion.
    let src = r#"STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
if [ -n "$STEAMROOT" ] && [ "$STEAMROOT" != "/" ]; then
    rm -fr "$STEAMROOT"/*
fi
"#;
    let report = analyze_source(src).unwrap();
    assert!(
        !report.has(DiagCode::DangerousDelete),
        "got: {:#?}",
        report.with_code(DiagCode::DangerousDelete)
    );
}

#[test]
fn shellcheck_suggested_guard_is_understood() {
    // ShellCheck's suggested fix: ${STEAMROOT:?} aborts when the
    // variable is empty. The analyzer understands the abort semantics:
    // the empty-expansion path halts before the rm, so no surviving
    // path deletes from the root.
    let src = r#"STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
rm -fr "${STEAMROOT:?}"/*
"#;
    let report = analyze_source(src).unwrap();
    assert!(
        !report.has(DiagCode::DangerousDelete),
        "the :? guard rules out the empty expansion; got: {:#?}",
        report.with_code(DiagCode::DangerousDelete)
    );
}

#[test]
fn fig1_flagged_on_exactly_the_cd_failure_path() {
    // The paper's scenario: `cd` fails (script path has no directory),
    // STEAMROOT ends up empty, the rm target becomes /*.
    let report = analyze_source(FIG1).unwrap();
    let danger = report.with_code(DiagCode::DangerousDelete);
    assert_eq!(danger.len(), 1, "exactly one root-wipe path: {danger:#?}");
    let cond = danger[0].path_condition().join(" and ");
    assert!(
        cond.contains("fails"),
        "the witness path is the cd-failure one; got: {cond}"
    );
}

#[test]
fn hex_pipeline_types_cleanly() {
    // §4 "Richer types": polymorphic stream types accept the pipeline.
    let src = "hex='[0-9a-f]+'\ngrep -oE \"$hex\" | sed 's/^/0x/' | sort -g\n";
    let report = analyze_source(src).unwrap();
    assert!(
        !report.has(DiagCode::StreamTypeMismatch) && !report.has(DiagCode::DeadPipe),
        "got: {:#?}",
        report.diagnostics
    );
}

#[test]
fn platform_dependent_case_noted() {
    let src = "case $(uname -s) in Linux) echo l ;; Darwin) echo d ;; esac\n";
    let report = analyze_source(src).unwrap();
    assert!(
        report.has(DiagCode::PlatformDependent),
        "got: {:#?}",
        report.diagnostics
    );
}
