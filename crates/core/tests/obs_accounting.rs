//! The exploration accounting must balance exactly: every terminal
//! world is explained by the initial world plus forks minus pruned
//! branches minus cap-dropped worlds. These tests use only per-engine
//! counters (via `ProfileReport`), no global recorder state, so they
//! can run in parallel with everything else.

use shoal_core::{analyze_source_with, AnalysisOptions, CapReason, ProfileReport};
use shoal_corpus::{figures, scale};

fn profiled(src: &str) -> (shoal_core::AnalysisReport, ProfileReport) {
    let report = analyze_source_with(
        src,
        AnalysisOptions {
            profile: true,
            ..AnalysisOptions::default()
        },
    )
    .expect("corpus script parses");
    let profile = report.profile.clone().expect("profile requested");
    (report, profile)
}

fn assert_balanced(name: &str, src: &str) {
    let (report, p) = profiled(src);
    let expected = 1 + p.forks as i64 - p.worlds_pruned as i64 - p.cap_dropped as i64;
    assert_eq!(
        report.terminal_worlds as i64, expected,
        "{name}: terminal worlds ≠ 1 + forks − pruned − cap_dropped \
         (terminal={}, forks={}, pruned={}, cap_dropped={})",
        report.terminal_worlds, p.forks, p.worlds_pruned, p.cap_dropped
    );
    assert_eq!(
        report.worlds_explored, p.peak_live_worlds,
        "{name}: report peak disagrees with profile peak"
    );
    assert!(
        report.worlds_explored >= report.terminal_worlds,
        "{name}: peak live ({}) below terminal count ({})",
        report.worlds_explored,
        report.terminal_worlds
    );
    assert_eq!(report.paths_completed, report.terminal_worlds);
}

#[test]
fn figures_balance() {
    assert_balanced("fig1", figures::FIG1);
    assert_balanced("fig2", figures::FIG2);
    assert_balanced("fig3", figures::FIG3);
    assert_balanced("fig5", figures::FIG5);
}

#[test]
fn figures_balance_without_pruning() {
    for (name, src) in [
        ("fig1", figures::FIG1),
        ("fig2", figures::FIG2),
        ("fig3", figures::FIG3),
    ] {
        let report = analyze_source_with(
            src,
            AnalysisOptions {
                enable_pruning: false,
                profile: true,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        let p = report.profile.unwrap();
        assert_eq!(
            report.terminal_worlds as i64,
            1 + p.forks as i64 - p.worlds_pruned as i64 - p.cap_dropped as i64,
            "{name} (pruning off) out of balance"
        );
    }
}

#[test]
fn scaling_scripts_balance() {
    assert_balanced("straight_line_20", &scale::straight_line(20));
    assert_balanced("branchy_4", &scale::branchy(4));
    assert_balanced("branchy_independent_5", &scale::branchy_independent(5));
    assert_balanced("wide_pipeline_8", &scale::wide_pipeline(8));
}

#[test]
fn branchy_overflow_records_max_worlds_cap() {
    // 2^8 = 256 genuinely independent paths against the default
    // 64-world cap: exploration must truncate, say so machine-readably,
    // and still balance.
    let (report, p) = profiled(&scale::branchy_independent(8));
    assert!(report.incomplete);
    assert!(p.cap_dropped > 0, "expected dropped worlds, got none");
    let hit = report
        .cap_hits
        .iter()
        .find(|h| h.reason == CapReason::MaxWorlds)
        .expect("a max_worlds cap hit is recorded");
    assert!(hit.dropped > 0);
    assert!(hit.hits >= 1);
    // The triggering diagnostic carries the same machine-readable reason.
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.cap_reason == Some(CapReason::MaxWorlds)));
}

#[test]
fn symbolic_while_records_loop_bound_cap() {
    // A loop on a symbolic condition survives past the unrolling bound:
    // the widening is recorded as a cap hit — but not as dropped worlds
    // (widening keeps the worlds), so the balance is unaffected.
    let src = "#!/bin/sh\nwhile [ \"$1\" != done ]; do\n    shift\ndone\necho ok\n";
    assert_balanced("symbolic_while", src);
    let (report, _) = profiled(src);
    let hit = report
        .cap_hits
        .iter()
        .find(|h| h.reason == CapReason::LoopBound)
        .expect("loop widening is recorded as a cap hit");
    assert_eq!(hit.dropped, 0);
}

#[test]
fn exhaustive_exploration_has_no_cap_hits() {
    let (report, p) = profiled("true\nfalse\necho done\n");
    assert!(report.cap_hits.is_empty());
    assert_eq!(p.cap_dropped, 0);
    assert_eq!(report.terminal_worlds, 1);
    assert_eq!(report.worlds_explored, 1);
}

#[test]
fn peak_exceeds_terminal_when_paths_merge_or_prune() {
    // Fig. 1 forks during expansion (`${0%/*}`, `cd … && echo`) and
    // prunes; the peak must be visible and exact, not the old
    // terminal-count lower bound.
    let (report, p) = profiled(figures::FIG1);
    assert!(p.forks > 0, "fig1 must fork");
    assert!(report.worlds_explored > 1);
    assert_eq!(p.peak_live_worlds, report.worlds_explored);
}

#[test]
fn profile_is_opt_in_and_timed() {
    let plain = analyze_source_with(figures::FIG1, AnalysisOptions::default()).unwrap();
    assert!(plain.profile.is_none());
    let (_, p) = profiled(figures::FIG1);
    // Timings come from a monotonic clock and phases sum below total
    // (total additionally includes parsing).
    assert!(p.total_us >= p.exec_us);
    assert!(p.total_us >= p.parse_us);
}
