//! End-to-end trace reconciliation: the fork/prune/cap events the
//! engine emits into the global recorder must tell the same story as
//! the per-engine counters in the report, and the JSONL export must
//! parse back losslessly.
//!
//! The recorder is process-global, so this file contains exactly ONE
//! test function: cargo runs test *binaries* sequentially, but tests
//! *within* a binary in parallel threads, and a second test here would
//! race on `install`/`take_events`.

use shoal_core::{analyze_source_with, AnalysisOptions};
use shoal_corpus::figures;
use shoal_obs::{install, parse_jsonl, set_enabled, take_events, trace_to_jsonl, Value};

fn field_u64(ev: &shoal_obs::Event, key: &str) -> u64 {
    match ev.field(key) {
        Some(Value::U64(n)) => *n,
        other => panic!("event {:?} field {key}: expected u64, got {other:?}", ev.kind),
    }
}

#[test]
fn events_reconcile_with_report_and_round_trip_jsonl() {
    for (name, src) in [
        ("fig1", figures::FIG1),
        ("fig2", figures::FIG2),
        ("fig3", figures::FIG3),
    ] {
        install();
        let report = analyze_source_with(
            src,
            AnalysisOptions {
                profile: true,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        let events = take_events();
        set_enabled(false);
        let p = report.profile.as_ref().unwrap();

        // Sum the per-site events and check them against the engine's
        // own counters, then against the terminal world count.
        let mut forks = 0u64;
        let mut pruned = 0u64;
        let mut cap_dropped = 0u64;
        let mut joins = 0u64;
        for ev in &events {
            match ev.kind {
                "fork" => forks += field_u64(ev, "new_worlds"),
                "prune" => pruned += field_u64(ev, "dropped"),
                "cap_hit" => cap_dropped += field_u64(ev, "dropped"),
                "join" => joins += 1,
                _ => {}
            }
        }
        assert_eq!(forks, p.forks, "{name}: fork events ≠ fork counter");
        assert_eq!(pruned, p.worlds_pruned, "{name}: prune events ≠ prune counter");
        assert_eq!(
            cap_dropped, p.cap_dropped,
            "{name}: cap_hit events ≠ cap counter"
        );
        assert_eq!(joins, 1, "{name}: exactly one join event per analysis");
        assert_eq!(
            report.terminal_worlds as i64,
            1 + forks as i64 - pruned as i64 - cap_dropped as i64,
            "{name}: event stream does not explain the terminal world count"
        );

        // Span events for both phases made it into the trace.
        let spans: Vec<&shoal_obs::Event> = events.iter().filter(|e| e.kind == "span").collect();
        for phase in ["parse", "exec_items"] {
            assert!(
                spans
                    .iter()
                    .any(|e| matches!(e.field("name"), Some(Value::Str(s)) if s == phase)),
                "{name}: missing span event for {phase}"
            );
        }

        // JSONL round trip: one valid JSON object per event, kinds and
        // counts preserved.
        let jsonl = trace_to_jsonl(&events);
        let parsed = parse_jsonl(&jsonl).expect("exported trace is valid JSONL");
        assert_eq!(parsed.len(), events.len(), "{name}: JSONL line count");
        let fork_lines = jsonl.lines().filter(|l| l.contains("\"fork\"")).count() as u64;
        assert!(
            fork_lines >= 1,
            "{name}: fork events survive export (forks={forks})"
        );

        // The metrics side saw the same traffic.
        let snap = shoal_obs::snapshot();
        assert_eq!(snap.counter("engine.forks").unwrap_or(0), forks);
        assert_eq!(snap.counter("engine.pruned").unwrap_or(0), pruned);
        assert_eq!(
            snap.gauge("engine.peak_live_worlds"),
            Some(p.peak_live_worlds as u64),
            "{name}: peak gauge"
        );
    }
}
