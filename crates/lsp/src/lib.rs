//! shoal-lsp: a language server over the incremental analysis engine.
//!
//! Implements the slice of the Language Server Protocol an editor needs
//! for live shell diagnostics — `initialize`, `textDocument/didOpen`,
//! `textDocument/didChange` (full-text sync), `textDocument/didClose`,
//! `shutdown`/`exit` — speaking JSON-RPC 2.0 over stdio with
//! `Content-Length` framing, built entirely on the crate's own JSON
//! layer (zero external dependencies, like the rest of the workspace).
//!
//! Analysis is the paper's JIT story made resident in the editor loop:
//!
//! * each open document owns a [`shoal_core::IncrSession`], so a
//!   keystroke re-executes only the dirty statement suffix
//!   (statement-level summary replay, byte-identical to cold analysis);
//! * `didOpen` consults the JIT daemon's two-tier result cache (same
//!   content-addressed keys, same on-disk format) for a cross-session
//!   warm start, and every fresh analysis is written back, so the CLI,
//!   the daemon, and the editor share one verdict store;
//! * published diagnostics carry provenance: each finding's typed
//!   constraint trail becomes LSP `relatedInformation`, pointing at the
//!   `if`/`case`/`test` sites whose assumptions produced the world that
//!   exhibits the bug.
//!
//! Positions are byte-offset based (LSP `character` values count bytes,
//! not UTF-16 code units — exact for the ASCII that shell scripts
//! overwhelmingly are, and never worse than one column off otherwise).

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;

use shoal_core::provenance::diag_json;
use shoal_core::{analyze_source_resilient, AnalysisOptions, AnalysisReport, IncrSession};
use shoal_daemon::cache::{cache_key, KeyParts, ResultCache};
use shoal_obs::json::Json;

/// Hot-tier capacity of the shared result cache while serving an
/// editor (per-document sessions do the real incremental work; the
/// result cache exists for cross-session warm starts).
const CACHE_HOT_CAPACITY: usize = 32;

/// One open document: its current full text and the incremental
/// session accumulated over its edit history.
struct Document {
    text: String,
    version: Option<f64>,
    session: IncrSession,
}

/// The server state behind one stdio connection.
pub struct Server<W: Write> {
    out: W,
    docs: HashMap<String, Document>,
    opts: AnalysisOptions,
    cache: Option<ResultCache>,
    spec_fingerprint: u64,
    shutdown_requested: bool,
    exit_code: Option<i32>,
}

impl<W: Write> Server<W> {
    /// A server writing responses/notifications to `out`, warm-starting
    /// from (and writing back to) the daemon result cache rooted at
    /// `cache_dir` when given.
    pub fn new(out: W, cache_dir: Option<PathBuf>) -> Server<W> {
        Server {
            out,
            docs: HashMap::new(),
            opts: AnalysisOptions::default(),
            cache: cache_dir.map(|dir| ResultCache::new(CACHE_HOT_CAPACITY, Some(dir), None)),
            spec_fingerprint: shoal_spec::SpecLibrary::builtin().fingerprint(),
            shutdown_requested: false,
            exit_code: None,
        }
    }

    /// Serves one connection until `exit` or EOF; returns the process
    /// exit code (0 after an orderly `shutdown`/`exit`, 1 otherwise —
    /// the LSP contract).
    pub fn serve(&mut self, reader: &mut impl BufRead) -> i32 {
        while self.exit_code.is_none() {
            let Some(msg) = read_message(reader) else { break };
            self.handle(&msg);
        }
        self.exit_code.unwrap_or(1)
    }

    fn handle(&mut self, msg: &Json) {
        shoal_obs::counter_add("lsp.requests", 1);
        let method = msg.get("method").and_then(Json::as_str).unwrap_or("");
        let id = msg.get("id").cloned();
        let params = msg.get("params").cloned().unwrap_or(Json::Null);
        match method {
            "initialize" => {
                let result = Json::Obj(vec![
                    (
                        "capabilities".into(),
                        Json::Obj(vec![
                            // 1 = full-text document sync.
                            ("textDocumentSync".into(), Json::Num(1.0)),
                        ]),
                    ),
                    (
                        "serverInfo".into(),
                        Json::Obj(vec![
                            ("name".into(), Json::Str("shoal-lsp".into())),
                            ("version".into(), Json::Str(shoal_daemon::version().into())),
                        ]),
                    ),
                ]);
                self.respond(id, result);
            }
            "initialized" => {}
            "shutdown" => {
                self.shutdown_requested = true;
                self.respond(id, Json::Null);
            }
            "exit" => {
                self.exit_code = Some(if self.shutdown_requested { 0 } else { 1 });
            }
            "textDocument/didOpen" => {
                let doc = params.get("textDocument").cloned().unwrap_or(Json::Null);
                let uri = doc.get("uri").and_then(Json::as_str).unwrap_or("").to_string();
                let text = doc.get("text").and_then(Json::as_str).unwrap_or("").to_string();
                let version = doc.get("version").and_then(Json::as_f64);
                if uri.is_empty() {
                    return;
                }
                self.docs.insert(
                    uri.clone(),
                    Document { text, version, session: IncrSession::new(self.opts.clone()) },
                );
                self.open_document(&uri);
            }
            "textDocument/didChange" => {
                let uri = params
                    .get("textDocument")
                    .and_then(|t| t.get("uri"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let version = params
                    .get("textDocument")
                    .and_then(|t| t.get("version"))
                    .and_then(Json::as_f64);
                // Full sync: the last change carries the whole text.
                let text = match params.get("contentChanges") {
                    Some(Json::Arr(changes)) => changes
                        .last()
                        .and_then(|c| c.get("text"))
                        .and_then(Json::as_str)
                        .map(str::to_string),
                    _ => None,
                };
                let (Some(text), Some(doc)) = (text, self.docs.get_mut(&uri)) else { return };
                doc.text = text;
                doc.version = version;
                self.analyze_document(&uri);
            }
            "textDocument/didClose" => {
                let uri = params
                    .get("textDocument")
                    .and_then(|t| t.get("uri"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                if self.docs.remove(&uri).is_some() {
                    // Clear our diagnostics for the closed document.
                    let version = None;
                    self.publish(&uri, version, Json::Arr(Vec::new()));
                }
            }
            _ => {
                // Unknown *requests* get a MethodNotFound error;
                // unknown notifications are ignored (LSP contract).
                if let Some(id) = id {
                    self.error(id, -32601, &format!("method not found: {method}"));
                }
            }
        }
    }

    /// `didOpen`: try the shared result cache first (cross-session warm
    /// start — publishes the cached verdict without running the
    /// engine), then fall back to a fresh analysis.
    fn open_document(&mut self, uri: &str) {
        let Some(doc) = self.docs.get(uri) else { return };
        let key = self.key_for(&doc.text, false);
        if let Some(entry) = self.cache.as_mut().and_then(|c| c.get(&key)) {
            shoal_obs::counter_add("lsp.warm_hits", 1);
            let diags = entry
                .body
                .get("diagnostics")
                .cloned()
                .unwrap_or(Json::Arr(Vec::new()));
            let (version, lsp) = {
                let doc = &self.docs[uri];
                (doc.version, lsp_diagnostics(&diags, &doc.text, uri))
            };
            self.publish(uri, version, lsp);
            return;
        }
        self.analyze_document(uri);
    }

    /// Runs the document's incremental session over its current text
    /// (resilient cold analysis when it does not parse — mid-edit
    /// documents still get diagnostics), publishes, and writes the
    /// verdict back to the shared cache.
    fn analyze_document(&mut self, uri: &str) {
        let Some(doc) = self.docs.get_mut(uri) else { return };
        let (report, resilient): (AnalysisReport, bool) = match doc.session.analyze(&doc.text) {
            Ok(report) => (report, false),
            Err(_) => (analyze_source_resilient(&doc.text, self.opts.clone()), true),
        };
        let diags = Json::Arr(report.diagnostics.iter().map(diag_json).collect());
        let (version, lsp) = (doc.version, lsp_diagnostics(&diags, &doc.text, uri));
        let key = self.key_for(&self.docs[uri].text, resilient);
        if let Some(cache) = self.cache.as_mut() {
            cache.put(key, shoal_daemon::entry_from_report(&report));
        }
        self.publish(uri, version, lsp);
    }

    /// The daemon's content-addressed key for this text under the
    /// server's options — `incremental` is excluded from the canonical
    /// options string, so editor, CLI, and daemon share entries.
    fn key_for(&self, text: &str, resilient: bool) -> String {
        cache_key(&KeyParts {
            source: text,
            options: &self.opts,
            resilient,
            spec_fingerprint: self.spec_fingerprint,
            version: shoal_daemon::version(),
        })
    }

    fn publish(&mut self, uri: &str, version: Option<f64>, diagnostics: Json) {
        shoal_obs::counter_add("lsp.publishes", 1);
        let mut params = vec![("uri".into(), Json::Str(uri.into()))];
        if let Some(v) = version {
            params.push(("version".into(), Json::Num(v)));
        }
        params.push(("diagnostics".into(), diagnostics));
        self.notify("textDocument/publishDiagnostics", Json::Obj(params));
    }

    fn respond(&mut self, id: Option<Json>, result: Json) {
        let msg = Json::Obj(vec![
            ("jsonrpc".into(), Json::Str("2.0".into())),
            ("id".into(), id.unwrap_or(Json::Null)),
            ("result".into(), result),
        ]);
        write_message(&mut self.out, &msg);
    }

    fn error(&mut self, id: Json, code: i64, message: &str) {
        let msg = Json::Obj(vec![
            ("jsonrpc".into(), Json::Str("2.0".into())),
            ("id".into(), id),
            (
                "error".into(),
                Json::Obj(vec![
                    ("code".into(), Json::Num(code as f64)),
                    ("message".into(), Json::Str(message.into())),
                ]),
            ),
        ]);
        write_message(&mut self.out, &msg);
    }

    fn notify(&mut self, method: &str, params: Json) {
        let msg = Json::Obj(vec![
            ("jsonrpc".into(), Json::Str("2.0".into())),
            ("method".into(), Json::Str(method.into())),
            ("params".into(), params),
        ]);
        write_message(&mut self.out, &msg);
    }
}

/// Serves LSP over stdin/stdout with the default shared cache
/// directory; the `shoal lsp` entry point.
pub fn run_stdio() -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut server = Server::new(stdout.lock(), Some(shoal_daemon::default_cache_dir()));
    let mut reader = stdin.lock();
    server.serve(&mut reader)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Reads one `Content-Length`-framed JSON-RPC message; `None` on EOF or
/// malformed framing (the connection is unrecoverable either way).
pub fn read_message(reader: &mut impl BufRead) -> Option<Json> {
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .strip_prefix("Content-Length:")
            .or_else(|| line.strip_prefix("content-length:"))
        {
            content_length = v.trim().parse().ok();
        }
        // Content-Type headers are read and ignored.
    }
    let len = content_length?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).ok()?;
    let text = String::from_utf8(body).ok()?;
    Json::parse(&text).ok()
}

/// Writes one framed message.
pub fn write_message(out: &mut impl Write, msg: &Json) {
    let body = msg.to_text();
    let _ = write!(out, "Content-Length: {}\r\n\r\n{}", body.len(), body);
    let _ = out.flush();
}

// ---------------------------------------------------------------------------
// Diagnostic conversion
// ---------------------------------------------------------------------------

/// Byte offsets of each line start; the span → LSP position table.
fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 0-based (line, character) of a byte offset.
fn position(starts: &[usize], offset: usize) -> (usize, usize) {
    let line = match starts.binary_search(&offset) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    };
    (line, offset - starts[line])
}

fn position_json(line: usize, character: usize) -> Json {
    Json::Obj(vec![
        ("line".into(), Json::Num(line as f64)),
        ("character".into(), Json::Num(character as f64)),
    ])
}

/// An LSP range from a shoal span JSON (`{start, end, line}` byte
/// offsets / 1-based line). Synthetic spans (`start == end == 0`) map
/// to the start of their line, or of the file when the line is 0 too.
fn range_json(span: &Json, starts: &[usize]) -> Json {
    let start = span.get("start").and_then(Json::as_u64).unwrap_or(0) as usize;
    let end = span.get("end").and_then(Json::as_u64).unwrap_or(0) as usize;
    let line = span.get("line").and_then(Json::as_u64).unwrap_or(0) as usize;
    let (from, to) = if start == 0 && end == 0 {
        let l = line.saturating_sub(1);
        ((l, 0), (l, 0))
    } else {
        (position(starts, start), position(starts, end))
    };
    Json::Obj(vec![
        ("start".into(), position_json(from.0, from.1)),
        ("end".into(), position_json(to.0, to.1)),
    ])
}

/// Converts a shoal diagnostics array (the `diag_json` shape — also the
/// shape stored in daemon cache entries) into LSP diagnostics. One
/// converter serves both the live path and the warm-start path, so a
/// cached open and a fresh open publish byte-identical payloads.
fn lsp_diagnostics(diags: &Json, text: &str, uri: &str) -> Json {
    let starts = line_starts(text);
    let Json::Arr(items) = diags else { return Json::Arr(Vec::new()) };
    let out = items
        .iter()
        .map(|d| {
            let severity = match d.get("severity").and_then(Json::as_str).unwrap_or("note") {
                "error" => 1.0,
                "warning" => 2.0,
                _ => 3.0,
            };
            let span = d.get("span").cloned().unwrap_or(Json::Null);
            let mut fields = vec![
                ("range".into(), range_json(&span, &starts)),
                ("severity".into(), Json::Num(severity)),
                (
                    "code".into(),
                    Json::Str(d.get("code").and_then(Json::as_str).unwrap_or("").into()),
                ),
                ("source".into(), Json::Str("shoal".into())),
                (
                    "message".into(),
                    Json::Str(d.get("message").and_then(Json::as_str).unwrap_or("").into()),
                ),
            ];
            // Provenance trail → relatedInformation: each typed
            // constraint of the witnessing world's path condition, at
            // the site where it was assumed.
            if let Some(Json::Arr(trail)) = d.get("provenance").and_then(|p| p.get("trail")) {
                let related: Vec<Json> = trail
                    .iter()
                    .filter(|t| {
                        t.get("span")
                            .and_then(|s| s.get("line"))
                            .and_then(Json::as_u64)
                            .unwrap_or(0)
                            > 0
                    })
                    .map(|t| {
                        let tspan = t.get("span").cloned().unwrap_or(Json::Null);
                        let kind = t.get("kind").and_then(Json::as_str).unwrap_or("fact");
                        let what = t.get("what").and_then(Json::as_str).unwrap_or("");
                        Json::Obj(vec![
                            (
                                "location".into(),
                                Json::Obj(vec![
                                    ("uri".into(), Json::Str(uri.into())),
                                    ("range".into(), range_json(&tspan, &starts)),
                                ]),
                            ),
                            ("message".into(), Json::Str(format!("{kind}: {what}"))),
                        ])
                    })
                    .collect();
                if !related.is_empty() {
                    fields.push(("relatedInformation".into(), Json::Arr(related)));
                }
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Arr(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_round_trips() {
        let msg = Json::Obj(vec![
            ("jsonrpc".into(), Json::Str("2.0".into())),
            ("method".into(), Json::Str("exit".into())),
        ]);
        let mut buf = Vec::new();
        write_message(&mut buf, &msg);
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("Content-Length: "));
        let mut reader = std::io::Cursor::new(buf);
        let back = read_message(&mut reader).expect("one message");
        assert_eq!(back.get("method").and_then(Json::as_str), Some("exit"));
        assert!(read_message(&mut reader).is_none(), "EOF after one message");
    }

    #[test]
    fn positions_are_zero_based_line_and_byte_column() {
        let starts = line_starts("ab\ncd\n");
        assert_eq!(position(&starts, 0), (0, 0));
        assert_eq!(position(&starts, 2), (0, 2));
        assert_eq!(position(&starts, 3), (1, 0));
        assert_eq!(position(&starts, 4), (1, 1));
    }
}
