//! End-to-end LSP sessions over in-memory pipes: a full
//! initialize → didOpen → didChange → shutdown → exit conversation, and
//! a cross-session warm start through the shared daemon cache.

use std::io::Cursor;
use std::sync::atomic::{AtomicU64, Ordering};

use shoal_corpus::figures::FIG1;
use shoal_lsp::{read_message, write_message, Server};
use shoal_obs::json::Json;

/// A fresh scratch directory under the system temp dir (the workspace
/// has no tempfile dependency).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "shoal-lsp-test-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn frame(msgs: &[Json]) -> Vec<u8> {
    let mut buf = Vec::new();
    for m in msgs {
        write_message(&mut buf, m);
    }
    buf
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn req(id: f64, method: &str, params: Json) -> Json {
    obj(vec![
        ("jsonrpc", Json::Str("2.0".into())),
        ("id", Json::Num(id)),
        ("method", Json::Str(method.into())),
        ("params", params),
    ])
}

fn notif(method: &str, params: Json) -> Json {
    obj(vec![
        ("jsonrpc", Json::Str("2.0".into())),
        ("method", Json::Str(method.into())),
        ("params", params),
    ])
}

fn did_open(uri: &str, text: &str) -> Json {
    notif(
        "textDocument/didOpen",
        obj(vec![(
            "textDocument",
            obj(vec![
                ("uri", Json::Str(uri.into())),
                ("languageId", Json::Str("shellscript".into())),
                ("version", Json::Num(1.0)),
                ("text", Json::Str(text.into())),
            ]),
        )]),
    )
}

fn did_change(uri: &str, version: f64, text: &str) -> Json {
    notif(
        "textDocument/didChange",
        obj(vec![
            (
                "textDocument",
                obj(vec![("uri", Json::Str(uri.into())), ("version", Json::Num(version))]),
            ),
            (
                "contentChanges",
                Json::Arr(vec![obj(vec![("text", Json::Str(text.into()))])]),
            ),
        ]),
    )
}

/// Reads every framed server→client message out of the captured output.
fn drain(out: Vec<u8>) -> Vec<Json> {
    let mut reader = Cursor::new(out);
    let mut msgs = Vec::new();
    while let Some(m) = read_message(&mut reader) {
        msgs.push(m);
    }
    msgs
}

fn publishes<'a>(msgs: &'a [Json], uri: &str) -> Vec<&'a Json> {
    msgs.iter()
        .filter(|m| {
            m.get("method").and_then(Json::as_str) == Some("textDocument/publishDiagnostics")
                && m.get("params")
                    .and_then(|p| p.get("uri"))
                    .and_then(Json::as_str)
                    == Some(uri)
        })
        .filter_map(|m| m.get("params").and_then(|p| p.get("diagnostics")))
        .collect()
}

fn codes(diags: &Json) -> Vec<String> {
    match diags {
        Json::Arr(items) => items
            .iter()
            .filter_map(|d| d.get("code").and_then(Json::as_str))
            .map(str::to_string)
            .collect(),
        _ => Vec::new(),
    }
}

#[test]
fn full_session_publishes_provenance_backed_diagnostics() {
    let uri = "file:///steam.sh";
    // A trailing edit that keeps the Fig. 1 bug: append a harmless
    // statement, exercising the incremental prefix-replay path.
    let edited = format!("{FIG1}echo done\n");
    let input = frame(&[
        req(1.0, "initialize", obj(vec![("capabilities", obj(vec![]))])),
        notif("initialized", obj(vec![])),
        did_open(uri, FIG1),
        did_change(uri, 2.0, &edited),
        req(2.0, "shutdown", Json::Null),
        notif("exit", Json::Null),
    ]);

    let mut out = Vec::new();
    let code = {
        let mut server = Server::new(&mut out, None);
        server.serve(&mut Cursor::new(input))
    };
    assert_eq!(code, 0, "orderly shutdown/exit exits 0");

    let msgs = drain(out);
    let init = msgs
        .iter()
        .find(|m| m.get("id").and_then(Json::as_f64) == Some(1.0))
        .expect("initialize response");
    assert_eq!(
        init.get("result")
            .and_then(|r| r.get("capabilities"))
            .and_then(|c| c.get("textDocumentSync"))
            .and_then(Json::as_f64),
        Some(1.0),
        "full-text document sync advertised"
    );

    let pubs = publishes(&msgs, uri);
    assert_eq!(pubs.len(), 2, "one publish per didOpen/didChange");
    for diags in &pubs {
        assert!(
            codes(diags).iter().any(|c| c == "dangerous-delete"),
            "Fig. 1 verdict survives the edit: {:?}",
            codes(diags)
        );
    }
    // The dangerous-delete diagnostic carries its constraint trail as
    // relatedInformation pointing back into the same document.
    let Json::Arr(items) = pubs[0] else { panic!("diagnostics array") };
    let dd = items
        .iter()
        .find(|d| d.get("code").and_then(Json::as_str) == Some("dangerous-delete"))
        .expect("dangerous-delete diagnostic");
    let related = dd.get("relatedInformation").expect("relatedInformation present");
    let Json::Arr(related) = related else { panic!("relatedInformation array") };
    assert!(!related.is_empty());
    for r in related {
        assert_eq!(
            r.get("location").and_then(|l| l.get("uri")).and_then(Json::as_str),
            Some(uri)
        );
        assert!(r.get("message").and_then(Json::as_str).is_some());
    }
    assert_eq!(
        dd.get("severity").and_then(Json::as_f64),
        Some(1.0),
        "errors map to LSP severity 1"
    );
}

#[test]
fn mid_edit_documents_still_get_diagnostics() {
    let uri = "file:///broken.sh";
    // An unterminated quote: the incremental engine cannot parse it, so
    // the server falls back to resilient cold analysis.
    let broken = "rm -rf \"$1\nif then fi\n";
    let input = frame(&[
        req(1.0, "initialize", obj(vec![])),
        did_open(uri, broken),
        req(2.0, "shutdown", Json::Null),
        notif("exit", Json::Null),
    ]);
    let mut out = Vec::new();
    let code = {
        let mut server = Server::new(&mut out, None);
        server.serve(&mut Cursor::new(input))
    };
    assert_eq!(code, 0);
    let msgs = drain(out);
    let pubs = publishes(&msgs, uri);
    assert_eq!(pubs.len(), 1, "a non-parsing document still publishes");
}

#[test]
fn warm_start_reuses_the_daemon_cache_across_servers() {
    let dir = scratch_dir("warm");
    let uri = "file:///fig1.sh";
    let session = |label: f64| {
        frame(&[
            req(label, "initialize", obj(vec![])),
            did_open(uri, FIG1),
            req(label + 1.0, "shutdown", Json::Null),
            notif("exit", Json::Null),
        ])
    };

    let mut cold_out = Vec::new();
    Server::new(&mut cold_out, Some(dir.clone())).serve(&mut Cursor::new(session(1.0)));
    let mut warm_out = Vec::new();
    Server::new(&mut warm_out, Some(dir.clone())).serve(&mut Cursor::new(session(10.0)));

    let cold = publishes(&drain(cold_out), uri)
        .first()
        .map(|d| d.to_text())
        .expect("cold publish");
    let warm = publishes(&drain(warm_out), uri)
        .first()
        .map(|d| d.to_text())
        .expect("warm publish");
    assert_eq!(cold, warm, "cached open publishes byte-identical diagnostics");
    assert!(cold.contains("dangerous-delete"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_requests_get_method_not_found() {
    let input = frame(&[
        req(1.0, "initialize", obj(vec![])),
        req(7.0, "textDocument/definition", obj(vec![])),
        req(2.0, "shutdown", Json::Null),
        notif("exit", Json::Null),
    ]);
    let mut out = Vec::new();
    Server::new(&mut out, None).serve(&mut Cursor::new(input));
    let msgs = drain(out);
    let err = msgs
        .iter()
        .find(|m| m.get("id").and_then(Json::as_f64) == Some(7.0))
        .expect("error response");
    assert_eq!(
        err.get("error").and_then(|e| e.get("code")).and_then(Json::as_f64),
        Some(-32601.0)
    );
}

#[test]
fn exit_without_shutdown_is_an_error_exit() {
    let input = frame(&[req(1.0, "initialize", obj(vec![])), notif("exit", Json::Null)]);
    let mut out = Vec::new();
    let code = Server::new(&mut out, None).serve(&mut Cursor::new(input));
    assert_eq!(code, 1);
}
