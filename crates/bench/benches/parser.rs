//! Parser throughput over generated scripts of increasing size (on the
//! in-repo harness).

use shoal_corpus::scale;
use shoal_obs::bench::{bench, black_box, header};
use shoal_shparse::parse_script;

fn main() {
    header("parser");
    for n in [10usize, 100, 1000] {
        let src = scale::straight_line(n);
        let m = bench(&format!("parse/straight_line/{n}"), || {
            black_box(parse_script(black_box(&src)).unwrap());
        });
        let mb_s = src.len() as f64 / m.ns_per_iter * 1e3;
        println!("    ({:.1} MB/s over {} bytes)", mb_s, src.len());
    }
    let fig2 = shoal_corpus::figures::FIG2;
    bench("parse/fig2", || {
        black_box(parse_script(black_box(fig2)).unwrap());
    });

    let src = scale::straight_line(100);
    let ast = parse_script(&src).unwrap();
    bench("print_100_lines", || {
        black_box(black_box(&ast).to_source());
    });
}
