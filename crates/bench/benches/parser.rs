//! Parser throughput over generated scripts of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use shoal_corpus::scale;
use shoal_shparse::parse_script;
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("parse");
    for n in [10usize, 100, 1000] {
        let src = scale::straight_line(n);
        g.throughput(Throughput::Bytes(src.len() as u64));
        g.bench_with_input(BenchmarkId::new("straight_line", n), &src, |b, s| {
            b.iter(|| parse_script(black_box(s)).unwrap())
        });
    }
    let fig2 = shoal_corpus::figures::FIG2;
    g.bench_function("fig2", |b| {
        b.iter(|| parse_script(black_box(fig2)).unwrap())
    });
    g.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let src = scale::straight_line(100);
    let ast = parse_script(&src).unwrap();
    c.bench_function("print_100_lines", |b| {
        b.iter(|| black_box(&ast).to_source())
    });
}

criterion_group!(benches, bench_parse, bench_roundtrip);
criterion_main!(benches);
