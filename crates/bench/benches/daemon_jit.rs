//! JIT daemon latency: what a client pays per verdict on each serving
//! path. `jit/warm_*` is the subsystem's reason to exist — a warm
//! content-addressed hit over the unix socket, which skips parsing and
//! symbolic execution entirely and should sit orders of magnitude
//! below the in-process analysis (`jit/local_*`, the cost a cold miss
//! or a fallback pays on top of the round-trip). `jit/roundtrip_status`
//! isolates the wire floor: connect + frame + dispatch with no
//! analysis and no cache behind it.

use shoal_core::{analyze_source_with, AnalysisOptions};
use shoal_daemon::client::{self, ClientConfig, Served};
use shoal_daemon::server::{run, ServerConfig};
use shoal_obs::bench::{bench, black_box, header};
use std::time::Duration;

fn main() {
    header("daemon_jit");

    let base = std::env::temp_dir().join(format!("shoal-jit-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create bench dir");
    let socket = base.join("daemon.sock");
    let config = ServerConfig {
        socket: socket.clone(),
        cache_dir: Some(base.join("cache")),
        cache_capacity: 64,
        jobs: 2,
        ..ServerConfig::default()
    };
    let server = std::thread::spawn(move || run(config));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while std::os::unix::net::UnixStream::connect(&socket).is_err() {
        assert!(
            std::time::Instant::now() < deadline,
            "bench daemon did not come up"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let cfg = ClientConfig {
        socket: socket.clone(),
        auto_spawn: false,
        spawn_wait: Duration::from_millis(100),
        ..ClientConfig::default()
    };
    let opts = AnalysisOptions::default();

    for (name, source) in [
        ("fig1", shoal_corpus::figures::FIG1),
        ("fig3", shoal_corpus::figures::FIG3),
    ] {
        // Prime the cache, and assert the paths we are about to time
        // are the paths we think they are.
        let primed = client::analyze(&cfg, source, &opts, false);
        assert!(matches!(primed.served, Served::Daemon { .. }));
        let warmed = client::analyze(&cfg, source, &opts, false);
        assert_eq!(warmed.served, Served::Daemon { cache_hit: true });

        bench(&format!("jit/warm_{name}"), || {
            black_box(client::analyze(&cfg, source, &opts, false));
        });
        bench(&format!("jit/local_{name}"), || {
            black_box(analyze_source_with(source, opts.clone()).expect("figures parse"));
        });
    }

    bench("jit/roundtrip_status", || {
        black_box(client::status(&socket).expect("daemon answers"));
    });

    // Service-level percentiles under concurrent closed-loop load —
    // the multi-tenant numbers (p50/p95/p99 per request, 4 clients)
    // the roadmap asks to keep on record. The first run primes the
    // cache and is discarded: the recorded tail then measures
    // steady-state serving (wire + lookup + contention), not the
    // analysis cost of cold misses, which `jit/local_*` already
    // tracks and which would make p99 too noisy to gate. Printed in
    // the same `ns/iter` line format, so bench_trajectory.sh folds
    // them into BENCH_daemon.json next to the single-client cases.
    let shape = shoal_daemon::bench_service::BenchConfig {
        clients: 4,
        requests: 25,
        socket: Some(socket.clone()),
        overload: false,
    };
    shoal_daemon::bench_service::run_bench(&shape).expect("bench-service priming run");
    let report = shoal_daemon::bench_service::run_bench(&shape).expect("bench-service load run");
    assert_eq!(report.fallbacks, 0, "bench daemon must stay reachable");
    assert_eq!(report.mismatches, 0, "served verdicts must match local");
    assert_eq!(report.misses, 0, "primed corpus must serve warm");
    print!("{}", report.render_bench_lines());

    client::stop(&socket).expect("daemon stops");
    server.join().expect("server thread").expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&base);

    // Overload shape: a private tiny daemon (1 slot, 2-deep queue)
    // under 8 closed-loop clients. Only the shed/coalesced *rate*
    // keys are printed — the percentile keys under a deliberately
    // starved daemon would poison the min-keeping harvest of the
    // steady-state numbers above. Rates are informational (skipped by
    // the regression cap), but their presence is gated so the
    // overload plane cannot silently disappear.
    let overload = shoal_daemon::bench_service::BenchConfig {
        clients: 8,
        requests: 10,
        socket: None,
        overload: true,
    };
    let report =
        shoal_daemon::bench_service::run_bench(&overload).expect("bench-service overload run");
    assert_eq!(
        report.mismatches, 0,
        "every overload verdict (served, coalesced, or shed-then-local) must match local"
    );
    print!("{}", report.render_overload_bench_lines());
}
