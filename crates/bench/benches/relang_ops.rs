//! Benches for the regular-language engine (on the in-repo harness):
//! the decision procedures are the analyzer's inner loop, so their
//! costs bound everything else.

use shoal_obs::bench::{bench, black_box, header};
use shoal_relang::{Dfa, Regex};

fn main() {
    header("relang_ops");
    let patterns = [
        ("literal", "simple-literal-string"),
        ("lsb", r"(Distributor ID|Description|Release|Codename):\t.*"),
        ("path", r"/?([^/\n]+/)*[^/\n]+"),
        ("numeric", r"[-+]?[0-9]+(\.[0-9]*)?([eE][-+]?[0-9]+)?.*"),
    ];
    for (name, pat) in patterns {
        let re = Regex::parse(pat).unwrap();
        bench(&format!("dfa_compile/{name}"), || {
            black_box(Dfa::from_regex(black_box(&re)));
        });
    }

    let lsb = Regex::parse(r"(Distributor ID|Description|Release|Codename):\t.*").unwrap();
    let desc = Regex::grep_pattern("^desc").unwrap();
    let hex = Regex::parse("0x[0-9a-f]+").unwrap();
    let bound = Regex::parse("0x[0-9a-f]+.*").unwrap();
    bench("decisions/emptiness_of_intersection", || {
        black_box(black_box(&lsb).intersect(&desc).is_empty());
    });
    bench("decisions/containment", || {
        black_box(black_box(&hex).is_subset_of(&bound));
    });
    bench("decisions/equivalence", || {
        black_box(black_box(&hex).equiv(&hex));
    });
    bench("decisions/witness", || {
        black_box(black_box(&lsb).witness());
    });

    // Adversarial containment: the materialized product would exceed
    // 10k pairs, but the counterexample ("ab") sits two BFS steps from
    // the start pair. Benched at the Dfa level (no memo) so it measures
    // the lazy search itself.
    let adv_a = Dfa::from_regex(
        &Regex::concat(vec![Regex::byte(b'a'), Regex::byte(b'b')])
            .or(&Regex::byte(b'c').then(&Regex::byte(b'a').repeat(101, Some(101)).star())),
    );
    let adv_b =
        Dfa::from_regex(&Regex::byte(b'c').then(&Regex::byte(b'a').repeat(103, Some(103)).star()));
    bench("decisions/containment_early_exit", || {
        black_box(black_box(&adv_a).is_subset_of(black_box(&adv_b)));
    });

    let paths = Dfa::from_regex(&Regex::parse(r"/?([^/\n]+/)*[^/\n]+").unwrap());
    let suffix = Dfa::from_regex(&Regex::parse(r"/(.|\n)*").unwrap());
    bench("right_quotient_dirname", || {
        black_box(black_box(&paths).right_quotient(&suffix));
    });

    let re = Regex::parse(r"(Distributor ID|Description|Release|Codename):\t.*").unwrap();
    let dfa = Dfa::from_regex(&re);
    let line = b"Description:\tUbuntu 24.04.1 LTS";
    bench("match_line/dfa", || {
        black_box(dfa.matches(black_box(line)));
    });
    bench("match_line/derivatives", || {
        black_box(re.matches(black_box(line)));
    });
}
