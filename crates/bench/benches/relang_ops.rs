//! Criterion benches for the regular-language engine: the decision
//! procedures are the analyzer's inner loop, so their costs bound
//! everything else.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use shoal_relang::{Dfa, Regex};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let patterns = [
        ("literal", "simple-literal-string"),
        ("lsb", r"(Distributor ID|Description|Release|Codename):\t.*"),
        ("path", r"/?([^/\n]+/)*[^/\n]+"),
        ("numeric", r"[-+]?[0-9]+(\.[0-9]*)?([eE][-+]?[0-9]+)?.*"),
    ];
    let mut g = c.benchmark_group("dfa_compile");
    for (name, pat) in patterns {
        let re = Regex::parse(pat).unwrap();
        g.bench_function(name, |b| b.iter(|| Dfa::from_regex(black_box(&re))));
    }
    g.finish();
}

fn bench_decisions(c: &mut Criterion) {
    let lsb = Regex::parse(r"(Distributor ID|Description|Release|Codename):\t.*").unwrap();
    let desc = Regex::grep_pattern("^desc").unwrap();
    let hex = Regex::parse("0x[0-9a-f]+").unwrap();
    let bound = Regex::parse("0x[0-9a-f]+.*").unwrap();
    let mut g = c.benchmark_group("decisions");
    g.bench_function("emptiness_of_intersection", |b| {
        b.iter(|| black_box(lsb.intersect(&desc)).is_empty())
    });
    g.bench_function("containment", |b| {
        b.iter(|| black_box(&hex).is_subset_of(&bound))
    });
    g.bench_function("equivalence", |b| b.iter(|| black_box(&hex).equiv(&hex)));
    g.bench_function("witness", |b| b.iter(|| black_box(&lsb).witness()));
    g.finish();
}

fn bench_quotients(c: &mut Criterion) {
    let paths = Dfa::from_regex(&Regex::parse(r"/?([^/\n]+/)*[^/\n]+").unwrap());
    let suffix = Dfa::from_regex(&Regex::parse(r"/(.|\n)*").unwrap());
    c.bench_function("right_quotient_dirname", |b| {
        b.iter_batched(
            || (paths.clone(), suffix.clone()),
            |(p, s)| p.right_quotient(&s),
            BatchSize::SmallInput,
        )
    });
}

fn bench_matching(c: &mut Criterion) {
    let re = Regex::parse(r"(Distributor ID|Description|Release|Codename):\t.*").unwrap();
    let dfa = Dfa::from_regex(&re);
    let line = b"Description:\tUbuntu 24.04.1 LTS";
    let mut g = c.benchmark_group("match_line");
    g.bench_function("dfa", |b| b.iter(|| dfa.matches(black_box(line))));
    g.bench_function("derivatives", |b| b.iter(|| re.matches(black_box(line))));
    g.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_decisions,
    bench_quotients,
    bench_matching
);
criterion_main!(benches);
