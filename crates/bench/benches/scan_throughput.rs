//! Batch-scan throughput: the hardened driver over a small synthetic
//! corpus, sequential vs. the work-stealing pool. Byte-identity of the
//! parallel output is asserted once up front (the determinism *timing*
//! is covered by the integration tests); the timed loops then measure
//! `scan_paths` alone so the two cases are directly comparable. On a
//! single-core box `jobs_auto` degrades to the inline path and the two
//! numbers should coincide; on a multi-core box `jobs_auto` should win.

use shoal_core::{scan_paths, ScanOptions};
use shoal_corpus::{figures, scale};
use shoal_obs::bench::{bench, black_box, header};

fn main() {
    header("scan_throughput");

    // A fresh on-disk corpus per run: the figure scripts (real
    // findings) plus mid-size straight-line scripts (world-cap load).
    let dir = std::env::temp_dir().join(format!("shoal-scan-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench corpus dir");
    let figures = [figures::FIG1, figures::FIG2, figures::FIG5];
    let mut n = 0;
    for _ in 0..4 {
        for src in figures {
            std::fs::write(dir.join(format!("s{n:02}.sh")), src).expect("write corpus script");
            n += 1;
        }
        std::fs::write(dir.join(format!("s{n:02}.sh")), scale::straight_line(10))
            .expect("write corpus script");
        n += 1;
    }
    let roots = vec![dir.clone()];

    let seq_opts = ScanOptions {
        jobs: 1,
        ..ScanOptions::default()
    };
    let reference = scan_paths(&roots, &seq_opts).render_text();

    let par_opts = ScanOptions {
        jobs: 0, // auto: available parallelism
        ..ScanOptions::default()
    };
    assert_eq!(
        scan_paths(&roots, &par_opts).render_text(),
        reference,
        "parallel scan output must stay byte-identical"
    );

    // The audit plane must observe without changing verdicts, and its
    // cost must stay within noise of the plain scan (ci.sh gates
    // audit_on ≤ 1.05 × audit_off on the recorded numbers).
    let audit_opts = ScanOptions {
        jobs: 1,
        audit: true,
        ..ScanOptions::default()
    };
    assert_eq!(
        scan_paths(&roots, &audit_opts).render_text(),
        reference,
        "audit must not change scan verdicts"
    );

    bench("scan/jobs1", || {
        black_box(scan_paths(&roots, &seq_opts));
    });
    bench("scan/jobs_auto", || {
        black_box(scan_paths(&roots, &par_opts));
    });
    bench("scan/audit_off", || {
        black_box(scan_paths(&roots, &seq_opts));
    });
    bench("scan/audit_on", || {
        black_box(scan_paths(&roots, &audit_opts));
    });

    std::fs::remove_dir_all(&dir).ok();
}
