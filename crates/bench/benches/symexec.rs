//! Symbolic-execution cost (E9's criterion counterpart): figures,
//! scaling scripts, and the pruning ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shoal_core::{analyze_source_with, AnalysisOptions};
use shoal_corpus::{figures, scale};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);
    for (name, src) in [
        ("fig1", figures::FIG1),
        ("fig2", figures::FIG2),
        ("fig5", figures::FIG5),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| analyze_source_with(black_box(src), AnalysisOptions::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("straight_line");
    g.sample_size(10);
    for n in [10usize, 50] {
        let src = scale::straight_line(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, s| {
            b.iter(|| analyze_source_with(black_box(s), AnalysisOptions::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_pruning_ablation(c: &mut Criterion) {
    let src = scale::branchy(6);
    let mut g = c.benchmark_group("branchy6");
    g.sample_size(20);
    g.bench_function("with_pruning", |b| {
        b.iter(|| analyze_source_with(black_box(&src), AnalysisOptions::default()).unwrap())
    });
    g.bench_function("without_pruning", |b| {
        b.iter(|| {
            analyze_source_with(
                black_box(&src),
                AnalysisOptions {
                    enable_pruning: false,
                    ..AnalysisOptions::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_figures,
    bench_scaling,
    bench_pruning_ablation
);
criterion_main!(benches);
