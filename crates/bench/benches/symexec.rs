//! Symbolic-execution cost (E9's bench counterpart, on the in-repo
//! harness): figures, scaling scripts, and the pruning ablation. Also
//! measures the acceptance criterion for the observability layer: with
//! recording disabled, `analyze_source_with` must stay within noise of
//! its uninstrumented speed.

use shoal_core::{analyze_source_with, AnalysisOptions, IncrSession};
use shoal_corpus::{figures, scale};
use shoal_obs::bench::{bench, black_box, header};

/// Cold-vs-edit pair for the incremental engine: `cold` is a full
/// `analyze_source_with` of the script; `edit` analyzes the same
/// script plus a fresh one-line trailing statement through a warm
/// [`IncrSession`], so every iteration replays the whole prefix from
/// the summary cache and executes exactly one statement. The
/// `cold / edit` ratio is the headline incremental speedup
/// (acceptance: >= 5x on the 200-statement scripts).
fn bench_incr_pair(tag: &str, base: &str) {
    bench(&format!("incr/{tag}_cold"), || {
        black_box(analyze_source_with(black_box(base), AnalysisOptions::default()).unwrap());
    });
    let mut session = IncrSession::new(AnalysisOptions::default());
    session.analyze(base).unwrap();
    let mut edit = 0u64;
    bench(&format!("incr/{tag}_edit"), || {
        edit += 1;
        let src = format!("{base}echo edit_{edit}\n");
        black_box(session.analyze(black_box(&src)).unwrap());
    });
}

fn main() {
    header("symexec");
    for (name, src) in [
        ("fig1", figures::FIG1),
        ("fig2", figures::FIG2),
        ("fig5", figures::FIG5),
    ] {
        bench(&format!("figures/{name}"), || {
            black_box(analyze_source_with(black_box(src), AnalysisOptions::default()).unwrap());
        });
    }

    // N=200 pins down the asymptotics: with O(1) copy-on-write forks
    // the cost per statement is flat once the world cap is reached, so
    // the curve must stay near-linear (sub-quadratic) through 200.
    for n in [10usize, 50, 200] {
        let src = scale::straight_line(n);
        bench(&format!("straight_line/{n}"), || {
            black_box(analyze_source_with(black_box(&src), AnalysisOptions::default()).unwrap());
        });
    }

    // The incremental engine's acceptance pair: a trailing one-line
    // edit on a 200-statement script must beat a cold analysis by 5x+
    // (the prefix replays from per-statement summaries).
    bench_incr_pair("straight_line_200", &scale::straight_line(200));
    bench_incr_pair("loopy_200", &scale::loopy(200));

    let src = scale::branchy(6);
    bench("branchy6/with_pruning", || {
        black_box(analyze_source_with(black_box(&src), AnalysisOptions::default()).unwrap());
    });
    bench("branchy6/without_pruning", || {
        black_box(
            analyze_source_with(
                black_box(&src),
                AnalysisOptions {
                    enable_pruning: false,
                    ..AnalysisOptions::default()
                },
            )
            .unwrap(),
        );
    });

    // Observability overhead when *enabled* (the disabled path is the
    // default for every bench above).
    shoal_obs::install();
    bench("fig1/with_recording", || {
        black_box(
            analyze_source_with(black_box(figures::FIG1), AnalysisOptions::default()).unwrap(),
        );
        // Keep the trace from growing without bound across iterations.
        shoal_obs::take_events();
    });
    shoal_obs::set_enabled(false);
}
