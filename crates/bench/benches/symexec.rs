//! Symbolic-execution cost (E9's bench counterpart, on the in-repo
//! harness): figures, scaling scripts, and the pruning ablation. Also
//! measures the acceptance criterion for the observability layer: with
//! recording disabled, `analyze_source_with` must stay within noise of
//! its uninstrumented speed.

use shoal_core::{analyze_source_with, AnalysisOptions};
use shoal_corpus::{figures, scale};
use shoal_obs::bench::{bench, black_box, header};

fn main() {
    header("symexec");
    for (name, src) in [
        ("fig1", figures::FIG1),
        ("fig2", figures::FIG2),
        ("fig5", figures::FIG5),
    ] {
        bench(&format!("figures/{name}"), || {
            black_box(analyze_source_with(black_box(src), AnalysisOptions::default()).unwrap());
        });
    }

    // N=200 pins down the asymptotics: with O(1) copy-on-write forks
    // the cost per statement is flat once the world cap is reached, so
    // the curve must stay near-linear (sub-quadratic) through 200.
    for n in [10usize, 50, 200] {
        let src = scale::straight_line(n);
        bench(&format!("straight_line/{n}"), || {
            black_box(analyze_source_with(black_box(&src), AnalysisOptions::default()).unwrap());
        });
    }

    let src = scale::branchy(6);
    bench("branchy6/with_pruning", || {
        black_box(analyze_source_with(black_box(&src), AnalysisOptions::default()).unwrap());
    });
    bench("branchy6/without_pruning", || {
        black_box(
            analyze_source_with(
                black_box(&src),
                AnalysisOptions {
                    enable_pruning: false,
                    ..AnalysisOptions::default()
                },
            )
            .unwrap(),
        );
    });

    // Observability overhead when *enabled* (the disabled path is the
    // default for every bench above).
    shoal_obs::install();
    bench("fig1/with_recording", || {
        black_box(
            analyze_source_with(black_box(figures::FIG1), AnalysisOptions::default()).unwrap(),
        );
        // Keep the trace from growing without bound across iterations.
        shoal_obs::take_events();
    });
    shoal_obs::set_enabled(false);
}
