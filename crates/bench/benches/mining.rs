//! Spec-mining throughput: the ahead-of-time cost of building the
//! specification library (Fig. 4 is run once per command, offline).

use criterion::{criterion_group, criterion_main, Criterion};
use shoal_miner::mine_command;
use std::hint::black_box;

fn bench_mining(c: &mut Criterion) {
    let mut g = c.benchmark_group("mine");
    g.sample_size(10);
    for name in ["rm", "cp", "cd"] {
        g.bench_function(name, |b| b.iter(|| mine_command(black_box(name)).unwrap()));
    }
    g.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
