//! Spec-mining throughput (on the in-repo harness): the ahead-of-time
//! cost of building the specification library (Fig. 4 is run once per
//! command, offline).

use shoal_miner::mine_command;
use shoal_obs::bench::{bench, black_box, header};

fn main() {
    header("mining");
    for name in ["rm", "cp", "cd"] {
        bench(&format!("mine/{name}"), || {
            black_box(mine_command(black_box(name)).unwrap());
        });
    }
}
