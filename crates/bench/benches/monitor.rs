//! Monitoring overhead (E10's bench counterpart, on the in-repo
//! harness): raw pass-through vs. monitored pass-through.

use shoal_monitor::{OnViolation, StreamMonitor};
use shoal_obs::bench::{bench, black_box, header};
use shoal_relang::Regex;

fn stream(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(format!("0xabc{:x} value={i}\n", i % 4096).as_bytes());
    }
    out
}

fn main() {
    header("monitor");
    let data = stream(10_000);
    let ty = Regex::parse("0x[0-9a-f]+ value=[0-9]+").unwrap();
    let base = bench("stream_10k_lines/baseline_linewise_copy", || {
        let mut sink = Vec::with_capacity(data.len());
        for line in black_box(&data).split(|b| *b == b'\n') {
            sink.extend_from_slice(line);
            sink.push(b'\n');
        }
        black_box(sink);
    });
    let monitored = bench("stream_10k_lines/monitored", || {
        let mut m = StreamMonitor::new(&ty, OnViolation::Flag);
        let mut sink = Vec::with_capacity(data.len());
        m.feed(black_box(&data), &mut sink).unwrap();
        black_box(m.finish());
    });
    println!(
        "    (monitored / baseline = {:.2}x over {} bytes)",
        monitored.ns_per_iter / base.ns_per_iter,
        data.len()
    );
}
