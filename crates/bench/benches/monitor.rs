//! Monitoring overhead (E10's criterion counterpart): raw pass-through
//! vs. monitored pass-through.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shoal_monitor::{OnViolation, StreamMonitor};
use shoal_relang::Regex;
use std::hint::black_box;

fn stream(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(format!("0xabc{:x} value={i}\n", i % 4096).as_bytes());
    }
    out
}

fn bench_monitor(c: &mut Criterion) {
    let data = stream(10_000);
    let ty = Regex::parse("0x[0-9a-f]+ value=[0-9]+").unwrap();
    let mut g = c.benchmark_group("stream_10k_lines");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("baseline_linewise_copy", |b| {
        b.iter(|| {
            let mut sink = Vec::with_capacity(data.len());
            for line in black_box(&data).split(|b| *b == b'\n') {
                sink.extend_from_slice(line);
                sink.push(b'\n');
            }
            sink
        })
    });
    g.bench_function("monitored", |b| {
        b.iter(|| {
            let mut m = StreamMonitor::new(&ty, OnViolation::Flag);
            let mut sink = Vec::with_capacity(data.len());
            m.feed(black_box(&data), &mut sink).unwrap();
            m.finish()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
