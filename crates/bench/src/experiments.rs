//! The experiment implementations. Each prints the rows EXPERIMENTS.md
//! records; DESIGN.md §3 maps experiment ids to paper claims.

use shoal_core::{analyze_source, analyze_source_with, AnalysisOptions, DiagCode};
use shoal_corpus::{bugs, figures, scale, variants, BugClass};
use shoal_lint::lint_source;
use shoal_miner::{evaluate_mined, mine_command, mine_command_noisy, NoiseModel};
use shoal_monitor::{OnViolation, StreamMonitor};
use shoal_relang::Regex;
use shoal_spec::SpecLibrary;
use std::time::Instant;

fn banner(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// E1 — Figs. 1–3: semantic verdicts vs. the syntactic baseline.
pub fn e1_figures() {
    banner(
        "E1",
        "Steam bug and fixes: shoal vs. syntactic lint (Figs. 1-3)",
    );
    println!(
        "{:<22} {:<14} {:<18} {:<18}",
        "script", "ground truth", "shoal verdict", "lint SC2115"
    );
    let mut witnesses: Vec<(&str, String)> = Vec::new();
    for (name, src, truth) in [
        ("Fig. 1 (bug)", figures::FIG1, "dangerous"),
        ("Fig. 2 (safe fix)", figures::FIG2, "safe"),
        ("Fig. 3 (unsafe fix)", figures::FIG3, "dangerous"),
    ] {
        let report = analyze_source(src).expect("parses");
        let shoal_verdict = if report.has(DiagCode::DangerousDelete) {
            // The verdict is only as good as its witness: every flagged
            // figure must carry structured provenance naming the
            // execution path that reaches the deletion.
            let d = report.with_code(DiagCode::DangerousDelete)[0];
            let p = d
                .provenance
                .as_ref()
                .unwrap_or_else(|| panic!("E1: {name} finding lacks witness provenance"));
            assert!(
                !p.trail.is_empty(),
                "E1: {name} witness trail is empty — the danger only \
                 manifests under path constraints"
            );
            let steps: Vec<&str> = p.trail.iter().map(|t| t.what.as_str()).collect();
            witnesses.push((name, format!("world {}: {}", p.world, steps.join(" → "))));
            "FLAGGED"
        } else {
            "clean"
        };
        let lint = lint_source(src).expect("parses");
        let lint_verdict = if lint.iter().any(|l| l.code == "SC2115") {
            "FLAGGED"
        } else {
            "clean"
        };
        println!("{name:<22} {truth:<14} {shoal_verdict:<18} {lint_verdict:<18}");
    }
    // Fig. 1's witness must tell the actual story: cd fails, so
    // $STEAMROOT expands empty, so the glob deletes from /.
    let fig1_witness = &witnesses
        .iter()
        .find(|(n, _)| n.starts_with("Fig. 1"))
        .expect("E1: Fig. 1 must be flagged")
        .1;
    assert!(
        fig1_witness.contains("fails") && fig1_witness.contains("STEAMROOT"),
        "E1: Fig. 1 witness does not narrate the cd-failure/empty-STEAMROOT path: {fig1_witness}"
    );
    println!("\nwitness paths (structured provenance, asserted above):");
    for (name, w) in &witnesses {
        println!("  {name:<22} {w}");
    }
    println!(
        "\nclaim check: shoal separates the safe fix from the unsafe one; the\n\
         pattern-matcher flags all three identically (context-insensitive)."
    );
}

/// E2 — Fig. 5: dead-pipe detection via stream types.
pub fn e2_dead_pipe() {
    banner("E2", "Fig. 5 dead pipe: grep '^desc' over lsb_release -a");
    for (label, src) in [
        ("broken filter (^desc)", figures::FIG5),
        ("corrected filter (^Desc)", figures::FIG5_FIXED_FILTER),
    ] {
        let report = analyze_source(src).expect("parses");
        let dead = report.with_code(DiagCode::DeadPipe);
        println!("\n{label}:");
        if dead.is_empty() {
            println!("  no dead stage; the case arms are reachable");
        } else {
            for d in dead {
                println!("  {d}");
            }
        }
    }
    // The type computation itself, as the paper presents it.
    let lsb = Regex::parse(r"(Distributor ID|Description|Release|Codename):\t.*").unwrap();
    let bad = Regex::grep_pattern("^desc").unwrap();
    let good = Regex::grep_pattern("^Desc").unwrap();
    println!("\nintersection emptiness (the §3 reasoning):");
    println!(
        "  L(lsb_release -a) ∩ L(grep '^desc') = ∅: {}",
        lsb.intersect(&bad).is_empty()
    );
    println!(
        "  L(lsb_release -a) ∩ L(grep '^Desc') ∋ {:?}",
        lsb.intersect(&good).witness_string().unwrap_or_default()
    );
}

/// E3 — robustness to syntactic variants.
pub fn e3_variants() {
    banner(
        "E3",
        "Syntactic-variant robustness (12 dangerous, 5 safe look-alikes)",
    );
    println!(
        "{:<28} {:<12} {:<10} {:<10}",
        "variant", "truth", "shoal", "lint"
    );
    let mut shoal_tp = 0;
    let mut shoal_fp = 0;
    let mut lint_tp = 0;
    let mut lint_fp = 0;
    let (mut n_danger, mut n_safe) = (0, 0);
    for v in variants::all_variants() {
        let report = analyze_source(&v.script).expect("parses");
        let s = report.has(DiagCode::DangerousDelete);
        if s {
            // Every flag must be justified by a witness world, not just
            // a verdict bit (straight-line dangers have an empty trail;
            // the provenance record itself is still mandatory).
            for d in report.with_code(DiagCode::DangerousDelete) {
                assert!(
                    d.provenance.is_some(),
                    "E3: {} finding lacks witness provenance",
                    v.name
                );
            }
        }
        let l = lint_source(&v.script)
            .expect("parses")
            .iter()
            .any(|x| x.code == "SC2115");
        if v.dangerous {
            n_danger += 1;
            shoal_tp += usize::from(s);
            lint_tp += usize::from(l);
        } else {
            n_safe += 1;
            shoal_fp += usize::from(s);
            lint_fp += usize::from(l);
        }
        println!(
            "{:<28} {:<12} {:<10} {:<10}",
            v.name,
            if v.dangerous { "dangerous" } else { "safe" },
            if s { "FLAGGED" } else { "clean" },
            if l { "FLAGGED" } else { "clean" },
        );
    }
    println!(
        "\nshoal: {shoal_tp}/{n_danger} dangerous caught, {shoal_fp}/{n_safe} safe flagged (false positives)"
    );
    println!(
        "lint:  {lint_tp}/{n_danger} dangerous caught, {lint_fp}/{n_safe} safe flagged (false positives)"
    );
}

/// E4 — specification mining quality.
pub fn e4_mining() {
    banner("E4", "Spec mining (Fig. 4): docs → probing → Hoare cases");
    let lib = SpecLibrary::builtin();
    println!(
        "{:<10} {:>12} {:>7} {:>10} {:>10}",
        "command", "invocations", "cases", "accuracy", "coverage"
    );
    let mut acc_sum = 0.0;
    let mut n = 0;
    for name in shoal_miner::manpages::all_documented() {
        let mined = mine_command(name).expect("documented");
        let s = evaluate_mined(&mined, lib.get(name));
        println!(
            "{:<10} {:>12} {:>7} {:>9.1}% {:>9.1}%",
            s.command,
            s.invocations,
            s.cases,
            100.0 * s.accuracy,
            100.0 * s.coverage
        );
        acc_sum += s.accuracy;
        n += 1;
    }
    println!("mean accuracy: {:.1}%", 100.0 * acc_sum / n as f64);
    println!("\n'trust, but verify' — extraction noise recovered by probing:");
    println!(
        "{:<26} {:>10} {:>14}",
        "noise model", "accuracy", "phantom left"
    );
    for (label, noise) in [
        ("faithful", NoiseModel::none()),
        ("phantom flag p=1.0", NoiseModel::with_rates(0.0, 1.0, 3)),
        (
            "phantom p=1.0, seed 99",
            NoiseModel::with_rates(0.0, 1.0, 99),
        ),
    ] {
        let mined = mine_command_noisy("rm", &noise).expect("mines");
        let s = evaluate_mined(&mined, lib.get("rm"));
        let phantom = mined
            .syntax
            .flags
            .iter()
            .any(|f| f.description == "(phantom)");
        println!(
            "{:<26} {:>9.1}% {:>14}",
            label,
            100.0 * s.accuracy,
            if phantom { "YES (bad)" } else { "none" }
        );
    }
}

/// E5 — always-fails composition across control-flow distance.
pub fn e5_always_fails() {
    banner("E5", "Always-fails composition (rm … cat) across distance");
    let cases: Vec<(&str, String)> = vec![
        ("adjacent", "rm -r \"$1\"\ncat \"$1\"/config\n".to_string()),
        (
            "10 lines apart",
            format!(
                "rm -r \"$1\"\n{}cat \"$1\"/config\n",
                "echo step\n".repeat(10)
            ),
        ),
        (
            "across a brace group",
            "rm -r \"$1\"\n{ echo a; echo b; }\ncat \"$1\"/config\n".to_string(),
        ),
        (
            "across an if",
            "rm -r \"$1\"\nif true; then echo t; else echo f; fi\ncat \"$1\"/config\n".to_string(),
        ),
        (
            "inside a function",
            "use_it() { cat \"$1\"/config; }\nrm -r \"$2\"\nuse_it \"$2\"\n".to_string(),
        ),
        (
            "deeper path",
            "rm -r \"$1\"\ncat \"$1\"/nested/deeper/config\n".to_string(),
        ),
        (
            "control: different var",
            "rm -r \"$1\"\ncat \"$2\"/config\n".to_string(),
        ),
        (
            "control: recreated",
            "rm -r \"$1\"\nmkdir -p \"$1\"\ntouch \"$1\"/config\ncat \"$1\"/config\n".to_string(),
        ),
    ];
    println!("{:<26} {:<10} {:<10}", "scenario", "expected", "shoal");
    for (name, src) in &cases {
        let expected = !name.starts_with("control");
        let report = analyze_source(src).expect("parses");
        let got = report.has(DiagCode::AlwaysFails);
        println!(
            "{:<26} {:<10} {:<10}{}",
            name,
            if expected { "flag" } else { "clean" },
            if got { "FLAGGED" } else { "clean" },
            if got == expected {
                ""
            } else {
                "   <-- MISMATCH"
            }
        );
    }
}

/// E6 — monomorphic vs. polymorphic stream types (§4 "Richer types").
pub fn e6_poly_types() {
    banner("E6", "Polymorphic vs. monomorphic stream types");
    use shoal_spec::Invocation;
    use shoal_streamty::sig_for;
    // The downstream bound is the paper's own: sort -g :: ∀α ⊆
    // 0x[0-9a-f]+.*. α → α (§4 "Richer types").
    let paper_bound = Regex::parse("0x[0-9a-f]+.*").unwrap();
    let pipelines: Vec<(&str, Vec<Invocation>, Regex)> = vec![
        (
            "grep -oE hex | sed s/^/0x/ | sort -g",
            vec![
                Invocation::new("grep", &['o', 'E'], &["[0-9a-f]+"]),
                Invocation::new("sed", &[], &["s/^/0x/"]),
            ],
            paper_bound.clone(),
        ),
        (
            "grep -oE digits | sed s/^/n=/ | sort   (plain sort: no bound)",
            vec![
                Invocation::new("grep", &['o', 'E'], &["[0-9]+"]),
                Invocation::new("sed", &[], &["s/^/n=/"]),
            ],
            Regex::any_line(),
        ),
        (
            "grep -oE words | sed s/^/0x/ | sort -g  (genuinely ill-typed)",
            vec![
                Invocation::new("grep", &['o', 'E'], &["[g-z]+"]),
                Invocation::new("sed", &[], &["s/^/0x/"]),
            ],
            paper_bound,
        ),
    ];
    println!(
        "{:<64} {:<14} {:<14}",
        "pipeline", "mono types", "poly types"
    );
    for (name, stages, bound) in &pipelines {
        let mut mono_ty = Regex::any_line();
        let mut poly_ty = Regex::any_line();
        for inv in stages {
            let sig = sig_for(inv).expect("known filter");
            mono_ty = sig
                .apply_mono(&mono_ty)
                .unwrap_or_else(|_| Regex::any_line());
            poly_ty = sig.apply(&poly_ty).unwrap_or_else(|_| Regex::any_line());
        }
        let mono_ok = mono_ty.is_subset_of(bound);
        let poly_ok = poly_ty.is_subset_of(bound);
        println!(
            "{:<64} {:<14} {:<14}",
            name,
            if mono_ok { "accepts" } else { "REJECTS" },
            if poly_ok { "accepts" } else { "REJECTS" },
        );
    }
    println!(
        "\nclaim check: only the polymorphic system proves the paper's pipeline;\n\
         both correctly reject the genuinely ill-typed one."
    );
}

/// E7 — least-fixpoint inference on circular dataflow.
pub fn e7_fixpoint() {
    banner(
        "E7",
        "Fixpoint stream invariants for cycles (§4 feedback loops)",
    );
    use shoal_streamty::sig::Sig;
    use shoal_streamty::DataflowGraph;
    println!("{:<30} {:>12} {:>10}", "cycle", "iterations", "widened");
    for k in [2usize, 4, 8, 16] {
        // Ring oriented against the solver's update order: the hard case.
        let mut g = DataflowGraph::new();
        let nodes: Vec<_> = (0..k)
            .map(|i| {
                let seed = if i == k - 1 {
                    Regex::parse("task:[a-z]+").unwrap()
                } else {
                    Regex::empty()
                };
                g.node(&format!("n{i}"), seed)
            })
            .collect();
        for i in 1..k {
            g.edge(nodes[i], nodes[i - 1], Sig::identity());
        }
        g.edge(nodes[0], nodes[k - 1], Sig::identity());
        let fx = g.solve(16);
        println!(
            "{:<30} {:>12} {:>10}",
            format!("identity ring, k={k}"),
            fx.iterations,
            fx.widened.len()
        );
    }
    // A filtering cycle: converges to seed ∪ filtered image.
    let mut g = DataflowGraph::new();
    let n = g.node("worklist", Regex::parse("task:[a-z]+|done").unwrap());
    g.edge(
        n,
        n,
        Sig::Filter {
            keep: Regex::grep_pattern("^task:").unwrap(),
        },
    );
    let fx = g.solve(16);
    println!(
        "{:<30} {:>12} {:>10}   invariant: {}",
        "self-loop through grep",
        fx.iterations,
        fx.widened.len(),
        fx.types[n]
    );
    // A growing cycle needs widening.
    let mut g = DataflowGraph::new();
    let n = g.node("grow", Regex::lit("seed"));
    g.edge(n, n, Sig::poly_wrap(Regex::lit("x"), Regex::eps()));
    let fx = g.solve(6);
    println!(
        "{:<30} {:>12} {:>10}   (invariant widened to .*)",
        "prefix-growing self-loop",
        fx.iterations,
        fx.widened.len()
    );
}

/// E8 — precision/recall over the labeled corpus: shoal vs. lint.
pub fn e8_corpus() {
    banner(
        "E8",
        "Labeled bug corpus: semantic analysis vs. syntactic lint",
    );
    let corpus = bugs::generate_corpus(10, 2026);
    struct Counts {
        tp: usize,
        fp: usize,
        fns: usize,
    }
    let mut shoal_by_class: std::collections::BTreeMap<BugClass, Counts> =
        std::collections::BTreeMap::new();
    let mut lint_fp = 0usize;
    let mut lint_tp = 0usize;
    let mut agg_exec_us = 0u64;
    let mut agg_forks = 0u64;
    let mut agg_pruned = 0u64;
    let mut max_peak = 0usize;
    let mut capped = 0usize;
    for s in &corpus {
        let report = analyze_source_with(
            &s.script,
            AnalysisOptions {
                profile: true,
                ..AnalysisOptions::default()
            },
        )
        .expect("parses");
        if let Some(p) = &report.profile {
            agg_exec_us += p.exec_us;
            agg_forks += p.forks;
            agg_pruned += p.worlds_pruned;
            max_peak = max_peak.max(p.peak_live_worlds);
        }
        capped += usize::from(!report.cap_hits.is_empty());
        let lints = lint_source(&s.script).expect("parses");
        let lint_hit = lints.iter().any(|l| matches!(l.code, "SC2115" | "SC2086"));
        let detected = |class: BugClass| -> bool {
            match class {
                BugClass::DangerousDelete => report.has(DiagCode::DangerousDelete),
                BugClass::DeadPipe => report.has(DiagCode::DeadPipe),
                BugClass::AlwaysFails => report.has(DiagCode::AlwaysFails),
                BugClass::Benign => false,
            }
        };
        if s.class == BugClass::Benign {
            let any = detected(BugClass::DangerousDelete)
                || detected(BugClass::DeadPipe)
                || detected(BugClass::AlwaysFails);
            for class in [
                BugClass::DangerousDelete,
                BugClass::DeadPipe,
                BugClass::AlwaysFails,
            ] {
                shoal_by_class
                    .entry(class)
                    .or_insert(Counts {
                        tp: 0,
                        fp: 0,
                        fns: 0,
                    })
                    .fp += usize::from(any && detected(class));
            }
            lint_fp += usize::from(lint_hit);
        } else {
            let c = shoal_by_class.entry(s.class).or_insert(Counts {
                tp: 0,
                fp: 0,
                fns: 0,
            });
            if detected(s.class) {
                c.tp += 1;
            } else {
                c.fns += 1;
            }
            lint_tp += usize::from(lint_hit);
        }
    }
    println!(
        "{:<20} {:>5} {:>5} {:>5} {:>11} {:>8}",
        "class (shoal)", "TP", "FP", "FN", "precision", "recall"
    );
    for (class, c) in &shoal_by_class {
        let prec = if c.tp + c.fp == 0 {
            1.0
        } else {
            c.tp as f64 / (c.tp + c.fp) as f64
        };
        let rec = if c.tp + c.fns == 0 {
            1.0
        } else {
            c.tp as f64 / (c.tp + c.fns) as f64
        };
        println!(
            "{:<20} {:>5} {:>5} {:>5} {:>10.0}% {:>7.0}%",
            class.to_string(),
            c.tp,
            c.fp,
            c.fns,
            100.0 * prec,
            100.0 * rec
        );
    }
    let buggy = corpus
        .iter()
        .filter(|s| s.class != BugClass::Benign)
        .count();
    let benign = corpus.len() - buggy;
    println!(
        "\nlint (SC2115/SC2086 as bug signal): {lint_tp}/{buggy} buggy flagged, {lint_fp}/{benign} benign flagged"
    );
    println!("(the lint row is the paper's 'inherently noisy' claim, quantified)");
    println!(
        "\nexploration cost over {} scripts: {} µs symbolic execution, {} fork(s), \
         {} pruned, peak {} live world(s), {} script(s) hit a cap",
        corpus.len(),
        agg_exec_us,
        agg_forks,
        agg_pruned,
        max_peak,
        capped
    );
}

/// E9 — analysis-cost scaling and the pruning ablation, reported from
/// the engine's own [`shoal_core::ProfileReport`] (exact peak live
/// worlds and per-phase time, not wall-clock guesses).
pub fn e9_scaling() {
    banner("E9", "Analysis cost scaling; concrete-pruning ablation");
    let profiled = |src: &str, pruning: bool| {
        analyze_source_with(
            src,
            AnalysisOptions {
                enable_pruning: pruning,
                profile: true,
                ..AnalysisOptions::default()
            },
        )
        .expect("parses")
    };
    println!(
        "{:<26} {:>8} {:>6} {:>12} {:>12}",
        "script", "paths", "peak", "exec", "total"
    );
    for n in [10usize, 50, 100, 200] {
        let report = profiled(&scale::straight_line(n), true);
        let p = report.profile.as_ref().unwrap();
        println!(
            "{:<26} {:>8} {:>6} {:>9} µs {:>9} µs",
            format!("straight-line n={n}"),
            report.terminal_worlds,
            p.peak_live_worlds,
            p.exec_us,
            p.total_us
        );
    }
    for n in [4usize, 8, 16] {
        let report = profiled(&scale::wide_pipeline(n), true);
        let p = report.profile.as_ref().unwrap();
        println!(
            "{:<26} {:>8} {:>6} {:>9} µs {:>9} µs",
            format!("pipeline width={n}"),
            report.terminal_worlds,
            p.peak_live_worlds,
            p.exec_us,
            p.total_us
        );
    }
    println!("\ncorrelated branches (all test $1), with vs. without concrete pruning:");
    println!(
        "{:<10} {:>12} {:>8} {:>10} {:>14} {:>10} {:>10}",
        "branches", "paths(prune)", "pruned", "time", "paths(ablate)", "peak", "time"
    );
    for k in [2usize, 4, 6, 8] {
        let src = scale::branchy(k);
        let with = profiled(&src, true);
        let without = profiled(&src, false);
        let (pw, pwo) = (
            with.profile.as_ref().unwrap(),
            without.profile.as_ref().unwrap(),
        );
        println!(
            "{:<10} {:>12} {:>8} {:>7} µs {:>14} {:>10} {:>7} µs",
            format!("k={k}"),
            with.terminal_worlds,
            pw.worlds_pruned,
            pw.total_us,
            without.terminal_worlds,
            pwo.peak_live_worlds,
            pwo.total_us
        );
    }
    println!("\nindependent branches (k distinct variables): 2^k genuine paths, capped at 64:");
    println!(
        "{:<10} {:>8} {:>6} {:>9} {:>12} cap hits",
        "branches", "paths", "peak", "dropped", "time"
    );
    for k in [2usize, 4, 6, 8] {
        let report = profiled(&scale::branchy_independent(k), true);
        let p = report.profile.as_ref().unwrap();
        let hits = report
            .cap_hits
            .iter()
            .map(|h| format!("{} at line {} ({}×)", h.reason, h.line, h.hits))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{:<10} {:>8} {:>6} {:>9} {:>9} µs {}",
            format!("k={k}"),
            report.terminal_worlds,
            p.peak_live_worlds,
            p.cap_dropped,
            p.total_us,
            if hits.is_empty() { "-".into() } else { hits }
        );
    }
}

/// E10 — runtime-monitoring overhead.
pub fn e10_monitor_overhead() {
    banner(
        "E10",
        "Runtime monitoring overhead (lines/s) and detection delay",
    );
    let line_type = Regex::parse("0x[0-9a-f]+ value=[0-9]+").unwrap();
    let make_stream = |n: usize, violation_at: Option<usize>| -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            if violation_at == Some(i) {
                out.extend_from_slice(b"CORRUPTED LINE\n");
            } else {
                out.extend_from_slice(format!("0xabc{i:x} value={i}\n", i = i % 4096).as_bytes());
            }
        }
        out
    };
    println!(
        "{:<24} {:>10} {:>14} {:>12}",
        "stream", "lines", "throughput", "overhead"
    );
    for n in [10_000usize, 100_000] {
        let data = make_stream(n, None);
        // Baseline: an unmonitored pass-through that still iterates
        // lines (what a trivial pipe stage does).
        let t0 = Instant::now();
        let mut sink = Vec::with_capacity(data.len());
        for line in data.split(|b| *b == b'\n') {
            sink.extend_from_slice(line);
            sink.push(b'\n');
        }
        let base = t0.elapsed();
        // Monitored copy.
        let mut monitor = StreamMonitor::new(&line_type, OnViolation::Flag);
        let mut sink2 = Vec::with_capacity(data.len());
        let t1 = Instant::now();
        monitor.feed(&data, &mut sink2).expect("in-memory");
        let report = monitor.finish();
        let mon = t1.elapsed();
        assert_eq!(report.violations, 0);
        let lps = n as f64 / mon.as_secs_f64();
        println!(
            "{:<24} {:>10} {:>11.2} M/s {:>11.1}x",
            format!("clean, n={n}"),
            n,
            lps / 1e6,
            mon.as_secs_f64() / base.as_secs_f64().max(1e-9)
        );
    }
    println!("\ndetection delay (halt mode): violation injected at line k is caught at line k:");
    for k in [1usize, 100, 9_999] {
        let data = make_stream(10_000, Some(k));
        let mut monitor = StreamMonitor::new(&line_type, OnViolation::Halt);
        let mut sink = Vec::new();
        monitor.feed(&data, &mut sink).expect("in-memory");
        let report = monitor.finish();
        println!(
            "  injected at line {:>6} → first_violation={:?}, halted={}, {} lines forwarded",
            k + 1,
            report.first_violation,
            report.halted,
            sink.iter().filter(|b| **b == b'\n').count()
        );
    }
}

/// E11 — the §5 `verify --no-RW` policy checker over installers.
pub fn e11_verify() {
    banner(
        "E11",
        "verify --no-RW over an installer corpus (§5 security)",
    );
    let specs = SpecLibrary::builtin();
    let policy = shoal_monitor::Policy::no_rw("/home/me/mine");
    let installers: Vec<(&str, String)> = vec![
        (
            "clean-installer",
            "mkdir -p /opt/app\ntouch /opt/app/bin\nln /opt/app/bin /opt/app/latest\n".to_string(),
        ),
        (
            "reads-protected",
            "cat /home/me/mine/keys > /opt/app/telemetry\n".to_string(),
        ),
        (
            "deletes-protected",
            "rm -rf /home/me/mine/docs\n".to_string(),
        ),
        ("dynamic-target", "rm -rf \"$1\"\n".to_string()),
        (
            "unknown-binary",
            "mkdir -p /opt/app\n./install-helper --prefix /opt/app\n".to_string(),
        ),
        (
            "dotdot-evasion",
            "cat /opt/../home/me/mine/keys\n".to_string(),
        ),
    ];
    println!(
        "{:<20} {:>9} {:>10} {:>13} {:>12}",
        "installer", "definite", "possible", "unclassified", "conclusive"
    );
    let mut conclusive = 0;
    for (name, src) in &installers {
        let r = shoal_monitor::verify_source(src, &policy, &specs).expect("parses");
        let definite = r.definite().len();
        let possible = r.findings.len() - definite;
        if r.conclusively_safe() || definite > 0 {
            conclusive += 1;
        }
        println!(
            "{:<20} {:>9} {:>10} {:>13} {:>12}",
            name,
            definite,
            possible,
            r.unclassified.len(),
            if r.conclusively_safe() {
                "safe"
            } else if definite > 0 {
                "violation"
            } else {
                "needs monitor"
            }
        );
    }
    println!(
        "\nstatic conclusiveness: {conclusive}/{} installers decided without runtime monitoring",
        installers.len()
    );
}

/// E12 — platform dependence and read/write dependency extraction (§5).
pub fn e12_platform_rwdeps() {
    banner(
        "E12",
        "Platform-dependence warnings and read/write dependencies",
    );
    let platform_script =
        "case $(uname -s) in Linux) cp config.linux /etc/app ;; Darwin) cp config.mac /etc/app ;; esac\n";
    let report = analyze_source(platform_script).expect("parses");
    println!("platform-dependent control flow:");
    for d in report.with_code(DiagCode::PlatformDependent) {
        println!("  {d}");
    }
    let build_script = "\
touch /build/config
cat /build/config
cp /build/config /build/config.bak
rm /build/config
cat /build/other
";
    println!("\nread/write dependencies (speculation-safety info for hS/Riker, §5):");
    let script = shoal_shparse::parse_script(build_script).expect("parses");
    let specs = SpecLibrary::builtin();
    let deps = shoal_core::checkers::rw_deps(&script, &specs);
    println!("{:<10} {:<10} {:<24} {:<12}", "from", "to", "path", "kind");
    for e in &deps {
        println!(
            "{:<10} {:<10} {:<24} {:<12}",
            format!("line {}", e.from_line),
            format!("line {}", e.to_line),
            e.path,
            e.kind
        );
    }
    println!("\ncommands with no shared paths (e.g. line 5) may be reordered without guards.");
}

/// E13 — the §4/§5 extension features: inline annotations, idempotence
/// checking, and the optimization coach.
pub fn e13_extensions() {
    banner(
        "E13",
        "Extensions: #@ annotations, idempotence, optimization coach",
    );
    println!("inline annotations (§4 'Ergonomic annotations'):");
    let plain = "rm -rf \"$INSTALL_ROOT\"/*\n";
    let annotated = "#@ var INSTALL_ROOT : /opt/[^/]+\nrm -rf \"$INSTALL_ROOT\"/*\n";
    for (label, src) in [
        ("un-annotated", plain),
        ("with #@ var annotation", annotated),
    ] {
        let r = analyze_source(src).expect("parses");
        println!(
            "  {label:<26} → {}",
            if r.has(DiagCode::DangerousDelete) {
                "FLAGGED (env var may be empty)"
            } else {
                "proven safe"
            }
        );
    }
    let cmd_annotated = "\
#@ cmd mystery-gen :: any -> (Distributor ID|Description):\\t.*
mystery-gen | grep '^desc'
";
    let r = analyze_source(cmd_annotated).expect("parses");
    println!(
        "  {:<26} → {}",
        "#@ cmd types unknown stage",
        if r.has(DiagCode::DeadPipe) {
            "dead pipe exposed through the annotation"
        } else {
            "missed"
        }
    );

    println!("\nidempotence (§4, the CoLiS criterion):");
    for (label, src, expect) in [
        (
            "mkdir (no -p) then use",
            "mkdir /opt/app\ntouch /opt/app/done\n",
            true,
        ),
        (
            "mkdir -p then use",
            "mkdir -p /opt/app\ntouch /opt/app/done\n",
            false,
        ),
        ("plain rm of consumed file", "rm /tmp/queue/job\n", true),
        ("rm -f of consumed file", "rm -f /tmp/queue/job\n", false),
        (
            "create then clean up",
            "mkdir /tmp/scratch\nrm -rf /tmp/scratch\n",
            false,
        ),
    ] {
        let r = analyze_source(src).expect("parses");
        let got = r.has(DiagCode::IdempotenceRisk);
        println!(
            "  {label:<28} → {}{}",
            if got { "NOT idempotent" } else { "idempotent" },
            if got == expect { "" } else { "   <-- MISMATCH" }
        );
    }

    println!("\noptimization coach (§5 'Performance'):");
    let src = "touch /a\ntouch /b\ncat input | sort | sort\nexit 0\necho dead\n";
    let script = shoal_shparse::parse_script(src).expect("parses");
    let suggestions = shoal_core::coach::coach(&script, &SpecLibrary::builtin());
    for s in &suggestions {
        println!("  {s}");
    }
    println!(
        "  ({} suggestion(s) from static rw-dependency and type information)",
        suggestions.len()
    );
}

/// E14 — robustness under adversity: mutated inputs, budgets, and
/// injected faults (the degradation invariants in DESIGN.md).
pub fn e14_robustness() {
    use shoal_core::{analyze_source_resilient, scan_source, Outcome, ScanOptions};
    use shoal_obs::prop::Gen;
    use std::time::Duration;

    banner(
        "E14",
        "Resilience: mutated corpus, budget degradation, panic isolation",
    );

    // (a) Mutation sweep: corrupt each figure script many ways; count
    // how often the resilient pipeline still yields a usable report.
    let sources = figures::all();
    let bounded = AnalysisOptions {
        fuel: Some(50_000),
        deadline: Some(Duration::from_millis(500)),
        ..AnalysisOptions::default()
    };
    const MUTANTS_PER_SCRIPT: usize = 200;
    println!(
        "mutation sweep ({MUTANTS_PER_SCRIPT} mutants/script, deterministic seed):\n{:<18} {:>10} {:>14} {:>16} {:>10}",
        "script", "full parse", "parse-partial", "budget-exhausted", "findings"
    );
    for (i, (name, src)) in sources.iter().enumerate() {
        let mut g = Gen::from_seed(0xE14_0000 + i as u64);
        let (mut full, mut partial, mut budget, mut findings) = (0usize, 0usize, 0usize, 0usize);
        for _ in 0..MUTANTS_PER_SCRIPT {
            let mut bytes = src.as_bytes().to_vec();
            match g.usize(0..3) {
                0 => {
                    let at = g.usize(0..bytes.len());
                    bytes.truncate(at);
                }
                1 => {
                    let at = g.usize(0..bytes.len());
                    bytes[at] = g.usize(0..256) as u8;
                }
                _ => {
                    let start = g.usize(0..bytes.len());
                    let end = g.usize(start..bytes.len());
                    bytes.drain(start..end);
                }
            }
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            let report = analyze_source_resilient(&mutated, bounded.clone());
            if report.parse_partial {
                partial += 1;
            } else {
                full += 1;
            }
            if report
                .cap_hits
                .iter()
                .any(|h| matches!(h.reason, shoal_core::CapReason::Fuel | shoal_core::CapReason::Deadline))
            {
                budget += 1;
            }
            if report
                .diagnostics
                .iter()
                .any(|d| d.severity >= shoal_core::Severity::Warning)
            {
                findings += 1;
            }
        }
        println!(
            "{name:<18} {full:>10} {partial:>14} {budget:>16} {findings:>10}   (100% usable reports)"
        );
    }

    // (b) Budget degradation: the Fig. 1 finding survives shrinking
    // fuel until the budget dies before the buggy statement.
    println!("\nfuel degradation on Fig. 1 (finding found at line 4):");
    println!("{:<10} {:>12} {:>12} {:>14}", "fuel", "finding", "incomplete", "cap reason");
    for fuel in [1u64, 5, 10, 50, 1_000] {
        let r = analyze_source_with(
            figures::FIG1,
            AnalysisOptions {
                fuel: Some(fuel),
                ..AnalysisOptions::default()
            },
        )
        .expect("Fig. 1 parses");
        let reason = r
            .cap_hits
            .iter()
            .map(|h| h.reason.as_str())
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{fuel:<10} {:>12} {:>12} {:>14}",
            if r.has(DiagCode::DangerousDelete) { "kept" } else { "not reached" },
            r.incomplete,
            if reason.is_empty() { "-" } else { &reason }
        );
    }

    // (c) Panic isolation: inject an engine panic into exactly one
    // script and batch-scan the figure corpus.
    println!("\ninjected engine panic (failpoint engine::fork=panic@fig1):");
    shoal_obs::failpoint::configure("engine::fork=panic@fig1").expect("valid spec");
    let mut outcomes: Vec<(String, Outcome)> = Vec::new();
    for (name, src) in &sources {
        let r = scan_source(&format!("{name}.sh"), src, &ScanOptions::default());
        outcomes.push((r.path.clone(), r.outcome));
    }
    shoal_obs::failpoint::clear();
    for (path, outcome) in &outcomes {
        println!("  {path:<18} → {outcome}");
    }
    let panicked = outcomes.iter().filter(|(_, o)| *o == Outcome::Panicked).count();
    println!(
        "  ({panicked} of {} scripts panicked; the rest were analyzed to completion)",
        outcomes.len()
    );
}

/// `xp all --json FILE` — one machine-readable results file covering
/// the corpus (figures + syntactic variants), serialized with the same
/// serializer as `shoal analyze --format json` (`shoal-report/v1`).
/// Diagnostics carry full structured provenance, so downstream tooling
/// can diff witness paths across runs, not just verdicts.
pub fn all_json(path: &str) -> std::io::Result<()> {
    let mut entries: Vec<(String, shoal_core::AnalysisReport)> = Vec::new();
    for (name, src) in figures::all() {
        let report = analyze_source(src).expect("figures parse");
        entries.push((format!("corpus/{name}.sh"), report));
    }
    for v in variants::all_variants() {
        let report = analyze_source(&v.script).expect("variants parse");
        entries.push((format!("variants/{}.sh", v.name), report));
    }
    let mut text = shoal_core::provenance::reports_json(&entries).to_text();
    text.push('\n');
    std::fs::write(path, text)?;
    println!("wrote {} script report(s) to {path}", entries.len());
    Ok(())
}

/// E16 — just-in-time analysis: cold vs. warm daemon latency.
///
/// The paper's "back to just-in-time" leg: at invocation time the
/// latency budget is milliseconds, which a from-scratch analysis blows
/// as soon as the script is non-trivial. The JIT daemon's answer is
/// content-addressed caching — a warm verdict costs one socket round
/// trip, independent of how expensive the analysis was. This
/// experiment measures both sides against a live daemon and checks the
/// headline claim: where analysis dominates (`branchy_6` explores 64
/// worlds), the warm path is ≥10x faster. Warm verdicts are also
/// checked byte-identical to a direct in-process analysis across the
/// figure corpus — the cache may never change an answer.
pub fn e16_jit_latency() {
    use shoal_daemon::client::{self, ClientConfig, Served};
    use shoal_daemon::server::{run, ServerConfig};
    use std::time::Duration;

    banner("E16", "JIT daemon: cold vs. warm verdict latency");

    let base = std::env::temp_dir().join(format!("shoal-e16-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create e16 dir");
    let socket = base.join("daemon.sock");
    let config = ServerConfig {
        socket: socket.clone(),
        cache_dir: Some(base.join("cache")),
        cache_capacity: 64,
        jobs: 2,
        ..ServerConfig::default()
    };
    let server = std::thread::spawn(move || run(config));
    let deadline = Instant::now() + Duration::from_secs(5);
    while std::os::unix::net::UnixStream::connect(&socket).is_err() {
        assert!(deadline > Instant::now(), "e16 daemon did not come up");
        std::thread::sleep(Duration::from_millis(10));
    }
    let cfg = ClientConfig {
        socket: socket.clone(),
        auto_spawn: false,
        spawn_wait: Duration::from_millis(100),
        ..ClientConfig::default()
    };
    let opts = AnalysisOptions::default();

    let branchy = scale::branchy(6);
    let loopy = scale::loopy(200);
    let mut workloads: Vec<(String, String)> = figures::all()
        .into_iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect();
    workloads.push(("scale/branchy_6".into(), branchy));
    workloads.push(("scale/loopy_200".into(), loopy));

    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "script", "cold (µs)", "warm (µs)", "speedup"
    );
    let mut best_speedup = 0.0f64;
    for (name, source) in &workloads {
        // Cold: first request — the daemon runs the engine and fills
        // both cache tiers.
        let t0 = Instant::now();
        let cold = client::analyze(&cfg, source, &opts, false);
        let cold_us = t0.elapsed().as_micros() as f64;
        assert_eq!(
            cold.served,
            Served::Daemon { cache_hit: false },
            "{name}: cold request must be a served miss"
        );
        let cold_entry = cold.result.expect("workloads parse");

        // Warm: min over repeats (contention only adds noise upward).
        let mut warm_us = f64::INFINITY;
        let mut warm_entry = None;
        for _ in 0..20 {
            let t0 = Instant::now();
            let warm = client::analyze(&cfg, source, &opts, false);
            warm_us = warm_us.min(t0.elapsed().as_micros() as f64);
            assert_eq!(warm.served, Served::Daemon { cache_hit: true });
            warm_entry = Some(warm.result.expect("workloads parse"));
        }
        let warm_entry = warm_entry.expect("at least one warm request");

        // The cache may never change an answer: warm bytes equal cold
        // bytes equal a direct in-process analysis.
        let direct = analyze_source_with(source, opts.clone()).expect("workloads parse");
        let direct_body =
            shoal_obs::json::Json::Obj(shoal_core::provenance::report_body_fields(&direct))
                .to_text();
        assert_eq!(
            warm_entry.body.to_text(),
            direct_body,
            "{name}: warm verdict must be byte-identical to direct analysis"
        );
        assert_eq!(warm_entry.body.to_text(), cold_entry.body.to_text());

        let speedup = cold_us / warm_us.max(1.0);
        best_speedup = best_speedup.max(speedup);
        println!("{name:<22} {cold_us:>12.0} {warm_us:>12.0} {speedup:>9.1}x");
    }

    client::stop(&socket).expect("daemon stops");
    server.join().expect("server thread").expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&base);

    println!(
        "\nbest cold/warm speedup: {best_speedup:.1}x (claim: >=10x where analysis dominates)"
    );
    assert!(
        best_speedup >= 10.0,
        "warm JIT path must be >=10x faster than cold where analysis dominates \
         (best observed: {best_speedup:.1}x)"
    );
}
