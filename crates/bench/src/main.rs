//! `xp` — the experiment harness.
//!
//! One subcommand per experiment from DESIGN.md §3 (`xp e1` … `xp e12`),
//! plus `xp all`. Each prints the table or series EXPERIMENTS.md records.
//! Everything is deterministic (fixed seeds); re-running regenerates the
//! same numbers up to wall-clock timings.

use std::process::ExitCode;

mod experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("help");
    match which {
        "e1" => experiments::e1_figures(),
        "e2" => experiments::e2_dead_pipe(),
        "e3" => experiments::e3_variants(),
        "e4" => experiments::e4_mining(),
        "e5" => experiments::e5_always_fails(),
        "e6" => experiments::e6_poly_types(),
        "e7" => experiments::e7_fixpoint(),
        "e8" => experiments::e8_corpus(),
        "e9" => experiments::e9_scaling(),
        "e10" => experiments::e10_monitor_overhead(),
        "e11" => experiments::e11_verify(),
        "e12" => experiments::e12_platform_rwdeps(),
        "e13" => experiments::e13_extensions(),
        "e14" => experiments::e14_robustness(),
        "e16" => experiments::e16_jit_latency(),
        "all" => {
            // `xp all --json [FILE]` additionally writes one
            // machine-readable results file (same serializer as
            // `shoal analyze --format json`).
            let json_out: Option<String> = args.iter().position(|a| a == "--json").map(|i| {
                args.get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| "xp_results.json".to_string())
            });
            experiments::e1_figures();
            experiments::e2_dead_pipe();
            experiments::e3_variants();
            experiments::e4_mining();
            experiments::e5_always_fails();
            experiments::e6_poly_types();
            experiments::e7_fixpoint();
            experiments::e8_corpus();
            experiments::e9_scaling();
            experiments::e10_monitor_overhead();
            experiments::e11_verify();
            experiments::e12_platform_rwdeps();
            experiments::e13_extensions();
            experiments::e14_robustness();
            if let Some(path) = json_out {
                if let Err(e) = experiments::all_json(&path) {
                    eprintln!("xp: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => {
            eprintln!(
                "usage: xp <e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|e11|e12|e13|e14|all> [--json [FILE]]\n\
                 Each subcommand regenerates one experiment from EXPERIMENTS.md.\n\
                 `all --json` also writes a machine-readable results file\n\
                 (default xp_results.json, shoal-report/v1 schema)."
            );
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
