//! Degradation invariants under adversarial input: mutated, truncated,
//! and byte-flipped corpus scripts must never panic the resilient
//! pipeline, and partial results must always be marked as such.

use shoal::core::{analyze_source_resilient, AnalysisOptions, DiagCode};
use shoal::corpus::figures;
use shoal_obs::prop::{run_cases, Gen};
use std::time::Duration;

/// Bounded options so a pathological mutant cannot stall the suite.
fn bounded() -> AnalysisOptions {
    AnalysisOptions {
        fuel: Some(50_000),
        deadline: Some(Duration::from_millis(500)),
        ..AnalysisOptions::default()
    }
}

/// One random corruption: truncate at a byte, flip a byte, or delete a
/// byte range. Non-UTF-8 results are lossily re-decoded, which is
/// exactly what `shoal scan` does with arbitrary files.
fn mutate(g: &mut Gen, src: &str) -> String {
    let mut bytes = src.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    match g.usize(0..3) {
        0 => {
            let at = g.usize(0..bytes.len());
            bytes.truncate(at);
        }
        1 => {
            let at = g.usize(0..bytes.len());
            bytes[at] = g.usize(0..256) as u8;
        }
        _ => {
            let start = g.usize(0..bytes.len());
            let end = g.usize(start..bytes.len());
            bytes.drain(start..end);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn mutated_corpus_never_panics_and_never_hides_partiality() {
    let sources: Vec<&str> = figures::all().into_iter().map(|(_, s)| s).collect();
    run_cases("mutated-corpus-no-panic", 96, |g| {
        let src = *g.pick(&sources);
        let mutated = mutate(g, src);
        // The strict parser must fail cleanly (Err), never panic.
        let _ = shoal::shparse::parse_script(&mutated);
        // The resilient pipeline must always produce a report.
        let report = analyze_source_resilient(&mutated, bounded());
        // Partiality is never silent: the flag and the per-site notes
        // travel together.
        assert_eq!(
            report.parse_partial,
            report.has(DiagCode::ParsePartial),
            "parse_partial flag and ParsePartial notes must agree"
        );
        // Budget exhaustion always leaves a machine-readable trace.
        if report
            .cap_hits
            .iter()
            .any(|h| matches!(h.reason, shoal::core::CapReason::Fuel | shoal::core::CapReason::Deadline))
        {
            assert!(report.incomplete);
        }
    });
}

#[test]
fn malformed_first_statement_still_finds_the_steam_bug() {
    // The acceptance scenario: Fig. 1 with a malformed first statement.
    // Error recovery must skip the garbage, analyze the rest, find the
    // dangerous delete, and mark the report parse-partial.
    let src = format!(")\n{}", figures::FIG1);
    let report = analyze_source_resilient(&src, AnalysisOptions::default());
    assert!(report.parse_partial);
    assert!(report.has(DiagCode::ParsePartial));
    assert!(
        report.has(DiagCode::DangerousDelete),
        "the Fig. 1 finding must survive the malformed first statement; got {:?}",
        report
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect::<Vec<_>>()
    );
}

#[test]
fn truncation_mid_word_of_every_figure_is_survivable() {
    // Exhaustive single-script check (not sampled): every prefix length
    // of Fig. 1 parses or recovers without panicking.
    for cut in 0..figures::FIG1.len() {
        if !figures::FIG1.is_char_boundary(cut) {
            continue;
        }
        let prefix = &figures::FIG1[..cut];
        let _ = analyze_source_resilient(prefix, bounded());
    }
}
