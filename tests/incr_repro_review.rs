//! Review repro: cross-run layout incoherence in relocation chains.

use shoal::core::provenance::reports_json;
use shoal::core::{analyze_source_with, AnalysisOptions, AnalysisReport, IncrSession};

fn rendered(report: &AnalysisReport) -> String {
    reports_json(&[("doc".to_string(), report.clone())]).to_text()
}

#[test]
fn indent_edit_unindent_stays_byte_identical() {
    // stmt1 carries interior spans (trail entries from the `if` test,
    // diag inside the branch). stmt2 is edited while stmt1 is shifted,
    // then the shift is undone.
    let src1 = "if [ -n \"$x\" ]; then rm -rf \"$d/\"*; fi\necho a\n";
    let src2 = "  if [ -n \"$x\" ]; then rm -rf \"$d/\"*; fi\necho b\n";
    let src3 = "if [ -n \"$x\" ]; then rm -rf \"$d/\"*; fi\necho b\n";
    let mut session = IncrSession::new(AnalysisOptions::default());
    for (i, src) in [src1, src2, src3].iter().enumerate() {
        let inc = session.analyze(src).expect("parse");
        let cold = analyze_source_with(src, AnalysisOptions::default()).expect("parse");
        assert_eq!(
            rendered(&inc),
            rendered(&cold),
            "run {} diverged (replayed {}, executed {}, relocations {})",
            i + 1,
            session.stats.last_replayed,
            session.stats.last_executed,
            session.stats.relocations
        );
    }
}
