//! The precision/coverage audit plane end to end: call-site dedupe
//! under world forking, taxonomy completeness, `--jobs` byte-parity of
//! the fleet report, and the dark-path contract (audit off = no
//! coverage map, identical verdicts).

use shoal::core::{analyze_source_with, scan_paths, AnalysisOptions, ScanOptions};
use shoal_obs::audit::LossCause;
use std::path::PathBuf;

fn audited() -> AnalysisOptions {
    AnalysisOptions {
        audit: true,
        ..AnalysisOptions::default()
    }
}

fn examples_dir() -> Vec<PathBuf> {
    vec![PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples"
    ))]
}

/// Regression for the fork-explosion accounting bug: an unknown
/// command reached by many live worlds is ONE call site, not one per
/// world. Three two-way forks put 8 worlds on the `frobnicate` line;
/// the map must still say sites=1 and a single no-spec loss.
#[test]
fn unknown_command_is_counted_per_call_site_not_per_world() {
    let src = "\
if [ -f /tmp/a ]; then x=1; else x=2; fi
if [ -f /tmp/b ]; then y=1; else y=2; fi
if [ -f /tmp/c ]; then z=1; else z=2; fi
frobnicate \"$x\" \"$y\" \"$z\"
";
    let report = analyze_source_with(src, audited()).expect("script parses");
    let cov = report.coverage.expect("audit on yields a coverage map");

    let frob = cov.commands.get("frobnicate").expect("command recorded");
    assert!(!frob.has_spec);
    assert_eq!(frob.sites, 1, "8 live worlds, one call site");
    assert_eq!(frob.scripts, 1);
    assert_eq!(
        cov.loss_totals().get(&LossCause::NoSpec).copied(),
        Some(1),
        "one no-spec loss for one site, not one per world: {:?}",
        cov.losses
    );

    // The same command on a second line is a second site.
    let twice = format!("{src}frobnicate --again\n");
    let report = analyze_source_with(&twice, audited()).expect("script parses");
    let cov = report.coverage.expect("coverage map");
    assert_eq!(cov.commands.get("frobnicate").unwrap().sites, 2);
    assert_eq!(cov.loss_totals().get(&LossCause::NoSpec).copied(), Some(2));
}

/// Every recorded cause contributes to the degradation totals: the
/// taxonomy is closed, so per-cause counts sum to `total_losses` and
/// any loss marks the script degraded.
#[test]
fn loss_taxonomy_sums_and_marks_degradation() {
    let src = "\
while read -r line; do
  munge \"$line\"
done < /tmp/input
frobnicate --all
";
    let report = analyze_source_with(src, audited()).expect("script parses");
    let cov = report.coverage.expect("coverage map");

    let totals = cov.loss_totals();
    let sum: u64 = totals.values().sum();
    assert_eq!(sum, cov.total_losses(), "per-cause counts must sum");
    assert!(sum > 0, "unknown commands + loop widening must record losses");
    assert!(
        totals.contains_key(&LossCause::NoSpec),
        "munge/frobnicate have no specs: {totals:?}"
    );
    assert!(
        totals.contains_key(&LossCause::LoopWiden),
        "the while body is widened: {totals:?}"
    );
    assert_eq!(cov.degraded_scripts, 1, "any loss degrades the script");

    // Degraded + zero-fired checkers ⇒ flagged as possibly suppressed.
    for (id, c) in &cov.checkers {
        assert_eq!(
            c.suppressed,
            u64::from(c.fired == 0),
            "checker {id}: fired={} suppressed={}",
            c.fired,
            c.suppressed
        );
    }
}

/// A clean script records coverage but no losses and no degradation.
#[test]
fn clean_script_is_fully_covered() {
    let report = analyze_source_with("echo hello\n", audited()).expect("parses");
    let cov = report.coverage.expect("coverage map");
    assert_eq!(cov.scripts, 1);
    assert_eq!(cov.degraded_scripts, 0);
    assert_eq!(cov.total_losses(), 0);
    assert!(cov.commands.get("echo").unwrap().has_spec);
    for (id, c) in &cov.checkers {
        assert_eq!(c.suppressed, 0, "nothing may be suppressed in {id}");
    }
}

/// The dark path: audit off produces no coverage map, and flipping
/// audit changes neither diagnostics nor the serialized report body.
#[test]
fn audit_off_is_dark_and_changes_no_verdicts() {
    let src = "\
if [ -f /tmp/a ]; then x=1; fi
frobnicate \"$x\"
rm -rf \"$UNSET/\"*
";
    let off = analyze_source_with(src, AnalysisOptions::default()).expect("parses");
    assert!(off.coverage.is_none(), "audit off must construct nothing");

    let on = analyze_source_with(src, audited()).expect("parses");
    assert!(on.coverage.is_some());
    assert_eq!(
        off.diagnostics, on.diagnostics,
        "the audit plane observes; it must never change verdicts"
    );
}

/// `scan --audit` is byte-identical across `--jobs` levels and across
/// runs, in both text and JSON forms — the fleet fold must not leak
/// scheduling order.
#[test]
fn audited_scan_is_byte_identical_at_any_jobs_level() {
    let roots = examples_dir();
    let opts = |jobs| ScanOptions {
        audit: true,
        jobs,
        ..ScanOptions::default()
    };
    let seq = scan_paths(&roots, &opts(1));
    let par = scan_paths(&roots, &opts(4));
    let again = scan_paths(&roots, &opts(4));

    assert_eq!(
        seq.to_json_audited().to_text(),
        par.to_json_audited().to_text(),
        "audited JSON must not depend on --jobs"
    );
    assert_eq!(
        seq.render_text_audited(),
        par.render_text_audited(),
        "audited text must not depend on --jobs"
    );
    assert_eq!(
        par.to_json_audited().to_text(),
        again.to_json_audited().to_text(),
        "audited JSON must be stable across runs"
    );

    // The audit block rides inside the scan JSON and carries the
    // fleet schema; a plain scan must not grow one.
    let doc = seq.to_json_audited().to_text();
    assert!(doc.contains("shoal-audit/v1"), "{doc}");
    let plain = scan_paths(&roots, &ScanOptions::default());
    assert!(
        !plain.to_json().to_text().contains("\"audit\""),
        "audit off: no audit key in scan output"
    );
}
