//! Golden-file tests for the provenance layer: world-tree DOT/JSON,
//! SARIF, and the `explain` witness narrative on the paper's figures.
//!
//! Regenerate the goldens after an intentional output change with
//! `UPDATE_GOLDEN=1 cargo test --test provenance`.

use shoal::core::provenance::{explain_diag, reports_json, sarif_json};
use shoal::core::{analyze_source, AnalysisReport};
use shoal::corpus::figures;
use std::path::Path;

fn report(src: &str) -> AnalysisReport {
    analyze_source(src).expect("figure parses")
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (run with UPDATE_GOLDEN=1)", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The four figure scripts the goldens and determinism tests cover.
fn figure_set() -> Vec<(&'static str, &'static str)> {
    vec![
        ("fig1", figures::FIG1),
        ("fig2", figures::FIG2),
        ("fig3", figures::FIG3),
        ("fig5", figures::FIG5),
    ]
}

#[test]
fn world_tree_dot_golden() {
    check_golden("fig1.tree.dot", &report(figures::FIG1).world_tree.to_dot());
}

#[test]
fn world_tree_json_golden() {
    check_golden(
        "fig1.tree.json",
        &report(figures::FIG1).world_tree.to_json().to_text(),
    );
}

#[test]
fn sarif_golden() {
    let entries = vec![("examples/fig1.sh".to_string(), report(figures::FIG1))];
    check_golden("fig1.sarif.json", &sarif_json(&entries).to_text());
}

#[test]
fn sarif_names_the_steamroot_empty_expansion_path() {
    let entries = vec![("examples/fig1.sh".to_string(), report(figures::FIG1))];
    let text = sarif_json(&entries).to_text();
    assert!(text.contains("\"codeFlows\""));
    assert!(
        text.contains("$STEAMROOT expands to the empty string"),
        "the dangerous-delete codeFlow must narrate the empty-STEAMROOT path"
    );
    assert!(text.contains("https://json.schemastore.org/sarif-2.1.0.json"));
}

#[test]
fn explain_golden_reproduces_fig1_narrative() {
    let r = report(figures::FIG1);
    // Finding #1 is the dangerous-delete (sorted after the line-2 note).
    let text = explain_diag("examples/fig1.sh", figures::FIG1, &r, 1).expect("finding exists");
    assert!(text.contains("STEAMROOT"));
    assert!(text.contains("fails"));
    check_golden("fig1.explain.txt", &text);
}

/// Two independent analyses of the same script serialize to the same
/// bytes — IDs, ordering, and trees are all deterministic.
#[test]
fn serialization_is_deterministic_across_runs() {
    for (name, src) in figure_set() {
        let a = report(src);
        let b = report(src);
        assert_eq!(
            a.world_tree.to_dot(),
            b.world_tree.to_dot(),
            "{name}: DOT differs across runs"
        );
        assert_eq!(
            a.world_tree.to_json().to_text(),
            b.world_tree.to_json().to_text(),
            "{name}: world-tree JSON differs across runs"
        );
        let ja = reports_json(&[(format!("{name}.sh"), a)]).to_text();
        let jb = reports_json(&[(format!("{name}.sh"), b)]).to_text();
        assert_eq!(ja, jb, "{name}: report JSON differs across runs");
    }
}

/// The tree's accounting reconciles exactly: one terminal leaf per
/// world that reached the end of the script.
#[test]
fn world_tree_leaves_reconcile_with_terminal_worlds() {
    for (name, src) in figures::all() {
        let r = report(src);
        assert_eq!(
            r.world_tree.terminal_leaves(),
            r.terminal_worlds,
            "{name}: tree terminal leaves != terminal_worlds"
        );
    }
}

/// Every diagnostic produced on the corpus carries provenance, and its
/// witness world exists in the tree.
#[test]
fn every_diagnostic_carries_provenance() {
    for (name, src) in figures::all() {
        let r = report(src);
        for d in &r.diagnostics {
            let p = d
                .provenance
                .as_ref()
                .unwrap_or_else(|| panic!("{name}: {d} lacks provenance"));
            assert!(
                (p.world as usize) < r.world_tree.len(),
                "{name}: witness world {} not in tree",
                p.world
            );
        }
    }
}
