//! The hardened batch driver (`shoal scan`): byte-deterministic output
//! and panic isolation via fault injection.
//!
//! Failpoint configuration is process-global, so every test here takes
//! `SCAN_LOCK` — an armed failpoint must never leak into a concurrent
//! determinism run.

use shoal::core::{scan_paths, Outcome, ScanOptions};
use std::path::PathBuf;
use std::sync::Mutex;

static SCAN_LOCK: Mutex<()> = Mutex::new(());

fn examples_dir() -> Vec<PathBuf> {
    vec![PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples"
    ))]
}

#[test]
fn examples_scan_is_byte_deterministic() {
    let _g = SCAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let roots = examples_dir();
    let a = scan_paths(&roots, &ScanOptions::default());
    let b = scan_paths(&roots, &ScanOptions::default());
    assert_eq!(
        a.render_text(),
        b.render_text(),
        "text output must be byte-identical across runs"
    );
    assert_eq!(
        a.to_json().to_text(),
        b.to_json().to_text(),
        "JSON output must be byte-identical across runs"
    );
    // The figure scripts contain real findings (Fig. 1, 3, 5), no
    // parse errors, and no budget exhaustion at default budgets.
    assert_eq!(a.exit_code(), 1);
    assert_eq!(a.count(Outcome::Panicked), 0);
    assert_eq!(a.count(Outcome::ParsePartial), 0);
    assert_eq!(a.count(Outcome::BudgetExhausted), 0);
    assert!(a.count(Outcome::Findings) >= 2);
}

#[test]
fn scan_walks_only_shell_files() {
    let _g = SCAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let summary = scan_paths(&examples_dir(), &ScanOptions::default());
    assert!(!summary.results.is_empty());
    for r in &summary.results {
        assert!(
            r.path.ends_with(".sh"),
            "examples/ holds .rs files too; only shell scripts may be scanned, got {}",
            r.path
        );
    }
}

#[test]
fn injected_engine_panic_is_isolated_to_one_script() {
    let _g = SCAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    shoal_obs::failpoint::configure("engine::fork=panic@fig1").expect("valid failpoint spec");
    let summary = scan_paths(&examples_dir(), &ScanOptions::default());
    shoal_obs::failpoint::clear();
    let fig1 = summary
        .results
        .iter()
        .find(|r| r.path.ends_with("fig1.sh"))
        .expect("fig1.sh is in examples/");
    assert_eq!(fig1.outcome, Outcome::Panicked);
    assert!(fig1.retried, "a panicked script must be retried once");
    assert!(
        fig1.panic_message
            .as_deref()
            .unwrap_or("")
            .contains("failpoint"),
        "panic payload must be preserved: {:?}",
        fig1.panic_message
    );
    for r in summary.results.iter().filter(|r| !r.path.ends_with("fig1.sh")) {
        assert_ne!(
            r.outcome,
            Outcome::Panicked,
            "{} must be unaffected by fig1's panic",
            r.path
        );
        assert!(r.report.is_some(), "{} must still be analyzed", r.path);
    }
    assert_eq!(summary.exit_code(), 4, "a panic dominates the exit code");
}

#[test]
fn unfiltered_failpoint_panics_every_script_but_never_the_batch() {
    let _g = SCAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    shoal_obs::failpoint::configure("engine::fork=panic").expect("valid failpoint spec");
    let summary = scan_paths(&examples_dir(), &ScanOptions::default());
    shoal_obs::failpoint::clear();
    for r in &summary.results {
        // Every figure script forks at least once, so all panic.
        assert_eq!(r.outcome, Outcome::Panicked, "{}", r.path);
        assert!(r.retried);
        assert!(r.report.is_none());
    }
    assert_eq!(summary.exit_code(), 4);
}

#[test]
fn scan_json_reports_taxonomy_per_script() {
    let _g = SCAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let summary = scan_paths(&examples_dir(), &ScanOptions::default());
    let json = summary.to_json().to_text();
    assert!(json.contains("\"schema\":\"shoal-report/v1\""));
    assert!(json.contains("\"outcome\":\"findings\""));
    assert!(json.contains("\"outcome\":\"ok\""));
    assert!(json.contains("\"exit_code\":1"));
}

/// Renders a summary both ways for byte-comparison.
fn rendered(roots: &[PathBuf], opts: &ScanOptions) -> (String, String, i32) {
    let s = scan_paths(roots, opts);
    (s.render_text(), s.to_json().to_text(), s.exit_code())
}

#[test]
fn parallel_scan_is_byte_identical_to_sequential() {
    let _g = SCAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // examples/ plus the repo's own tests/ tree (shell fixtures only
    // get picked up; the .rs files are filtered out by the walker).
    let roots = vec![
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/examples")),
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests")),
    ];
    let seq = rendered(&roots, &ScanOptions { jobs: 1, ..ScanOptions::default() });
    let par = rendered(&roots, &ScanOptions { jobs: 8, ..ScanOptions::default() });
    assert_eq!(seq.0, par.0, "--jobs 8 text must match --jobs 1 byte-for-byte");
    assert_eq!(seq.1, par.1, "--jobs 8 JSON must match --jobs 1 byte-for-byte");
    assert_eq!(seq.2, par.2, "exit-code taxonomy must not depend on --jobs");
    let auto = rendered(&roots, &ScanOptions { jobs: 0, ..ScanOptions::default() });
    assert_eq!(seq.0, auto.0, "--jobs 0 (auto) must match too");
}

#[test]
fn parallel_scan_is_deterministic_under_injected_worker_panic() {
    let _g = SCAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Arm a failpoint that panics inside exactly one script's worker:
    // the panic shield and retry policy are per-thread, so the parallel
    // batch must classify fig1 as panicked and stay byte-identical to
    // the sequential run under the same fault.
    let roots = examples_dir();
    shoal_obs::failpoint::configure("engine::fork=panic@fig1").expect("valid failpoint spec");
    let seq = rendered(&roots, &ScanOptions { jobs: 1, ..ScanOptions::default() });
    let par = rendered(&roots, &ScanOptions { jobs: 8, ..ScanOptions::default() });
    shoal_obs::failpoint::clear();
    assert_eq!(seq.0, par.0, "panic-under-parallel text must match sequential");
    assert_eq!(seq.1, par.1, "panic-under-parallel JSON must match sequential");
    assert_eq!(seq.2, 4, "one panicked script dominates the exit code");
    assert_eq!(par.2, 4);
    assert!(
        seq.0.contains("panicked"),
        "the injected panic must be visible in the report"
    );
}
