//! Cross-crate integration tests: the full pipeline from source text
//! through parsing, symbolic execution, stream typing, linting, mining,
//! and policy verification — exercised together through the umbrella
//! crate, the way a downstream user would.

use shoal::core::{analyze_source, AnalysisOptions, DiagCode};
use shoal::corpus::{figures, variants, BugClass};
use shoal::lint::lint_source;
use shoal::miner::{evaluate_mined, mine_command};
use shoal::monitor::{verify_source, Policy};
use shoal::spec::SpecLibrary;

/// E1 in miniature: the analyzer separates the three figures; the
/// baseline cannot.
#[test]
fn analyzer_separates_figures_linter_does_not() {
    let analyzer_flags = |src: &str| analyze_source(src).unwrap().has(DiagCode::DangerousDelete);
    let lint_flags = |src: &str| lint_source(src).unwrap().iter().any(|l| l.code == "SC2115");
    assert!(analyzer_flags(figures::FIG1));
    assert!(!analyzer_flags(figures::FIG2));
    assert!(analyzer_flags(figures::FIG3));
    // The syntactic baseline fires on all three alike.
    assert!(lint_flags(figures::FIG1));
    assert!(lint_flags(figures::FIG2));
    assert!(lint_flags(figures::FIG3));
}

/// E3 in miniature: every dangerous variant is caught; every safe
/// look-alike is proven clean.
#[test]
fn variant_robustness() {
    for v in variants::dangerous_variants() {
        let report = analyze_source(&v.script).unwrap();
        assert!(
            report.has(DiagCode::DangerousDelete),
            "dangerous variant {:?} missed:\n{}",
            v.name,
            v.script
        );
    }
    for v in variants::safe_lookalikes() {
        let report = analyze_source(&v.script).unwrap();
        assert!(
            !report.has(DiagCode::DangerousDelete),
            "safe look-alike {:?} wrongly flagged: {:#?}",
            v.name,
            report.with_code(DiagCode::DangerousDelete)
        );
    }
}

/// E8 in miniature: on a small labeled corpus the analyzer's per-class
/// detection maps to the injected ground truth.
#[test]
fn labeled_corpus_detection() {
    let corpus = shoal::corpus::generate_corpus(3, 7);
    for s in &corpus {
        let report =
            analyze_source(&s.script).unwrap_or_else(|e| panic!("{} failed to parse: {e}", s.name));
        let expected_code = match s.class {
            BugClass::DangerousDelete => Some(DiagCode::DangerousDelete),
            BugClass::DeadPipe => Some(DiagCode::DeadPipe),
            BugClass::AlwaysFails => Some(DiagCode::AlwaysFails),
            BugClass::Benign => None,
        };
        match expected_code {
            Some(code) => assert!(
                report.has(code),
                "{}: expected {code} in {:#?}\n{}",
                s.name,
                report.diagnostics,
                s.script
            ),
            None => {
                for code in [
                    DiagCode::DangerousDelete,
                    DiagCode::DeadPipe,
                    DiagCode::AlwaysFails,
                ] {
                    assert!(
                        !report.has(code),
                        "{}: benign script flagged with {code}: {:#?}\n{}",
                        s.name,
                        report.with_code(code),
                        s.script
                    );
                }
            }
        }
    }
}

/// Mined specifications slot into the engine in place of hand-written
/// ones and reproduce the rm/cat verdict.
#[test]
fn mined_specs_drive_the_engine() {
    use shoal::core::engine::Engine;
    use shoal::core::World;
    use shoal::shparse::parse_script;

    let mut engine = Engine::new(AnalysisOptions::default());
    // Replace the ground-truth `cat` spec with the mined one.
    let mined_cat = mine_command("cat").expect("cat is documented");
    engine.specs.insert(mined_cat);
    let script = parse_script("rm -r \"$1\"\ncat \"$1\"/config\n").unwrap();
    let worlds = engine.exec_items(vec![World::initial()], &script.items);
    let found = worlds
        .iter()
        .flat_map(|w| &w.diags)
        .any(|d| d.code == DiagCode::AlwaysFails);
    assert!(found, "mined cat spec must still expose the contradiction");
}

/// Mining quality holds across the whole documented corpus.
#[test]
fn mining_accuracy_across_corpus() {
    let lib = SpecLibrary::builtin();
    let mut total = 0.0;
    let mut n = 0;
    for name in shoal::miner::manpages::all_documented() {
        let mined = mine_command(name).unwrap();
        let score = evaluate_mined(&mined, lib.get(name));
        total += score.accuracy;
        n += 1;
    }
    let mean = total / n as f64;
    assert!(mean > 0.97, "mean mining accuracy {mean}");
}

/// The §5 scenario end to end: verify an installer against `--no-RW`.
#[test]
fn curl_to_sh_policy_check() {
    let specs = SpecLibrary::builtin();
    let policy = Policy::no_rw("/home/me/mine");
    let bad = "cat /home/me/mine/wallet.dat\n";
    let report = verify_source(bad, &policy, &specs).unwrap();
    assert_eq!(report.definite().len(), 1);
    let good = "mkdir -p /opt/x\ntouch /opt/x/done\n";
    let report = verify_source(good, &policy, &specs).unwrap();
    assert!(report.conclusively_safe());
}

/// The ablation switch: without concrete pruning, Fig. 2's guard cannot
/// discharge the warning (the infeasible world survives).
#[test]
fn pruning_ablation_changes_fig2_verdict() {
    use shoal::core::analyze_source_with;
    let with_pruning = analyze_source_with(figures::FIG2, AnalysisOptions::default()).unwrap();
    assert!(!with_pruning.has(DiagCode::DangerousDelete));
    let no_pruning = analyze_source_with(
        figures::FIG2,
        AnalysisOptions {
            enable_pruning: false,
            ..AnalysisOptions::default()
        },
    )
    .unwrap();
    assert!(
        no_pruning.has(DiagCode::DangerousDelete),
        "without pruning the guard cannot protect the rm"
    );
}

/// Stream types can be disabled (isolating the symbolic-execution cost
/// in E9); dead pipes are then not reported.
#[test]
fn stream_type_switch() {
    use shoal::core::analyze_source_with;
    let on = analyze_source_with(figures::FIG5, AnalysisOptions::default()).unwrap();
    assert!(on.has(DiagCode::DeadPipe));
    let off = analyze_source_with(
        figures::FIG5,
        AnalysisOptions {
            enable_stream_types: false,
            ..AnalysisOptions::default()
        },
    )
    .unwrap();
    assert!(!off.has(DiagCode::DeadPipe));
}

/// Parser → printer → analyzer: analyzing the pretty-printed form gives
/// the same headline verdicts as the original.
#[test]
fn verdicts_stable_under_reprinting() {
    for (name, src) in figures::all() {
        let ast = shoal::shparse::parse_script(src).unwrap();
        let printed = ast.to_source();
        let orig = analyze_source(src).unwrap();
        let re = analyze_source(&printed)
            .unwrap_or_else(|e| panic!("{name} reprinted form failed: {e}\n{printed}"));
        for code in [
            DiagCode::DangerousDelete,
            DiagCode::DeadPipe,
            DiagCode::AlwaysFails,
        ] {
            assert_eq!(
                orig.has(code),
                re.has(code),
                "{name}: verdict for {code} changed after reprinting\n{printed}"
            );
        }
    }
}

/// Scaling scripts stay within the world cap and terminate quickly.
#[test]
fn scaling_scripts_analyze() {
    use shoal::corpus::scale;
    for n in [10, 50] {
        let report = analyze_source(&scale::straight_line(n)).unwrap();
        assert!(report.paths_completed >= 1);
    }
    let branchy = analyze_source(&scale::branchy(8)).unwrap();
    assert!(branchy.paths_completed >= 1);
    let pipes = analyze_source(&scale::wide_pipeline(12)).unwrap();
    assert!(pipes.paths_completed >= 1);
    let loops = analyze_source(&scale::loopy(5)).unwrap();
    assert!(loops.paths_completed >= 1);
}
