//! The incremental engine's two contracts, end to end:
//!
//! 1. **Byte-identity** — for any edit history, an [`IncrSession`]'s
//!    report renders byte-for-byte identical to a cold
//!    `analyze_source_with` of the same text (the full provenance
//!    JSON, spans and world tree included).
//! 2. **Dirty-suffix bound** — after a single-statement edit, the
//!    number of statements actually re-executed is at most the dirty
//!    suffix (every statement from the first changed one to the end);
//!    everything before it replays from the summary cache.

use shoal::core::provenance::reports_json;
use shoal::core::{analyze_source_with, AnalysisOptions, AnalysisReport, IncrSession};
use shoal::corpus::{figures, scale};

/// The full rendered report — diagnostics, provenance trails, world
/// tree, counters — as one string; byte-identity means equality here.
fn rendered(report: &AnalysisReport) -> String {
    reports_json(&[("doc".to_string(), report.clone())]).to_text()
}

/// Analyzes `src` through the session and asserts byte-identity with a
/// cold run; returns the number of statements the session executed
/// (as opposed to replayed).
fn check(session: &mut IncrSession, src: &str) -> usize {
    let inc = session.analyze(src).expect("incremental parse");
    let cold = analyze_source_with(src, AnalysisOptions::default()).expect("cold parse");
    assert_eq!(
        rendered(&inc),
        rendered(&cold),
        "incremental output diverged from cold analysis"
    );
    session.stats.last_executed
}

#[test]
fn every_figure_replays_byte_identically() {
    for (name, src) in figures::all() {
        let mut session = IncrSession::new(AnalysisOptions::default());
        check(&mut session, src);
        // Unchanged source: the whole script replays from cache.
        let executed = check(&mut session, src);
        assert_eq!(executed, 0, "{name}: unchanged source re-executed {executed} stmt(s)");
    }
}

#[test]
fn trailing_edits_execute_only_the_new_statement() {
    let base = scale::straight_line(60);
    let mut session = IncrSession::new(AnalysisOptions::default());
    check(&mut session, &base);
    let mut src = base;
    for k in 0..5 {
        src.push_str(&format!("echo edit_{k}\n"));
        let executed = check(&mut session, &src);
        assert!(
            executed <= 1,
            "trailing append re-executed {executed} stmt(s), want <= 1"
        );
    }
}

#[test]
fn random_single_statement_edits_stay_within_the_dirty_suffix() {
    const N: usize = 40;
    const ROUNDS: usize = 12;
    // One statement per line after the shebang, so line index li
    // (1-based into `lines`) is statement index li - 1.
    let base = scale::straight_line(N);
    let mut lines: Vec<String> = base.lines().map(str::to_string).collect();
    assert_eq!(lines.len(), N + 1, "shebang + N statements");

    let mut session = IncrSession::new(AnalysisOptions::default());
    check(&mut session, &base);

    let mut lcg: u64 = 0x5eed_1234_abcd_9876;
    for round in 0..ROUNDS {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let li = 1 + ((lcg >> 33) as usize) % N;
        lines[li] = format!("echo patched_{round}_{li}");
        let src = format!("{}\n", lines.join("\n"));
        let executed = check(&mut session, &src);
        let dirty_suffix = N - (li - 1);
        assert!(
            executed <= dirty_suffix,
            "round {round}: edited stmt {} of {N}, executed {executed} > dirty suffix {dirty_suffix}",
            li - 1
        );
    }
}

#[test]
fn loop_heavy_scripts_replay_their_prefix() {
    let base = scale::loopy(12);
    let mut session = IncrSession::new(AnalysisOptions::default());
    check(&mut session, &base);
    let src = format!("{base}echo tail\n");
    let executed = check(&mut session, &src);
    assert!(executed <= 1, "loopy trailing edit executed {executed} stmt(s)");
}

#[test]
fn comment_and_blank_line_edits_execute_nothing() {
    let base = figures::FIG2;
    let mut session = IncrSession::new(AnalysisOptions::default());
    check(&mut session, base);
    // Insert a comment + blank line after the shebang: statement
    // content hashes are unchanged, spans shift; relocation (not
    // re-execution) must absorb the edit — and the published spans
    // must still match a cold analysis of the shifted text.
    let shifted = base.replacen("#!/bin/sh\n", "#!/bin/sh\n# reviewed 2026-08\n\n", 1);
    let executed = check(&mut session, &shifted);
    assert_eq!(
        executed, 0,
        "whitespace/comment-only edit re-executed {executed} stmt(s)"
    );
}

#[test]
fn sessions_survive_parse_errors_between_edits() {
    let mut session = IncrSession::new(AnalysisOptions::default());
    check(&mut session, figures::FIG1);
    // A mid-edit snapshot that does not parse must error without
    // poisoning the session...
    assert!(session.analyze("if then\ndo done (").is_err());
    // ...and the repaired document still replays cleanly.
    let executed = check(&mut session, figures::FIG1);
    assert_eq!(executed, 0);
}
